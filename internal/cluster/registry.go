package cluster

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ckpt"
)

// The distributed control plane: one rendezvous registry lives in the
// coordinator process; every worker keeps a single TCP connection to it
// for the whole epoch. The connection carries newline-delimited JSON
// control messages (ctlMsg) and doubles as the worker's health channel —
// its death is itself a failure signal.
//
// Handshake (per epoch):
//
//	worker → registry   {"op":"hello","proc":P,"addr":"host:port"}
//	registry → worker   {"op":"world","addrs":[addr0, addr1, ...]}
//
// The registry broadcasts the world table only once all r·n workers have
// registered their peer-wire listeners, so no worker ever dials a peer
// that is not yet listening. After the handshake:
//
//	worker → registry   {"op":"ping"}                       liveness
//	worker → registry   {"op":"ckpt","rank":R,"step":S}     writer saved
//	worker → registry   {"op":"killme","proc":P,"step":S}   at a scheduled
//	                    kill boundary; the worker then blocks awaiting
//	                    SIGKILL from the coordinator
//	worker → registry   {"op":"exhausted","rank":R}         last replica of
//	                    R died; worker exits with code 3
//	worker → registry   {"op":"done","proc":P,...}          app finished
//	registry → worker   {"op":"dead","proc":P}              failure
//	                    notification (the paper's external detector)
//	registry → worker   {"op":"shutdown"}                   all done; exit
type ctlMsg struct {
	Op    string   `json:"op"`
	Proc  int      `json:"proc,omitempty"`
	Rank  int      `json:"rank,omitempty"`
	Step  int      `json:"step,omitempty"`
	Addr  string   `json:"addr,omitempty"`
	Addrs []string `json:"addrs,omitempty"`
	// Host is the worker's host identity (op == "hello") and Hosts the
	// per-proc identity table (op == "world"): the same-host detection
	// that lets pairs of colocated workers negotiate the shared-memory
	// ring transport instead of loopback TCP at rendezvous time. The
	// identity is hostIdentity() — hostname hardened with machine/boot
	// IDs, since a bare hostname collides across cloned images.
	Host  string   `json:"host,omitempty"`
	Hosts []string `json:"hosts,omitempty"`
	// For carries the subject of an acknowledgement when it differs from
	// the sender (op == "reviveok": the revived proc being acked). Without
	// it, concurrent rejoins could not credit acks to the right handshake.
	For int `json:"for,omitempty"`
	// Obs is the worker's observability address (op == "hello"): the
	// loopback host:port serving /healthz and /metrics.
	Obs string `json:"obs,omitempty"`

	// Result payload (op == "done").
	Checksum   float64 `json:"checksum,omitempty"`
	Residual   float64 `json:"residual,omitempty"`
	Iterations int     `json:"iterations,omitempty"`
	Err        string  `json:"err,omitempty"`
}

// Control-plane ops.
const (
	opHello     = "hello"
	opWorld     = "world"
	opPing      = "ping"
	opCkpt      = "ckpt"
	opKillMe    = "killme"
	opExhausted = "exhausted"
	opDone      = "done"
	opDead      = "dead"
	opShutdown  = "shutdown"
	// opRevive announces a relaunched worker's new listener address to the
	// survivors (localized replay); each replies with opReviveAck once its
	// peer wire points at the new incarnation, and only when every live
	// worker has acknowledged does the registry hand the joiner the world
	// table — so the joiner's in-band recovery broadcast can never race a
	// survivor's stale dead-marking.
	opRevive    = "revive"
	opReviveAck = "reviveok"
)

// Worker exit codes (the launcher's failure ladder reads them).
const (
	// workerExitConfig signals a setup/config error before the app ran.
	workerExitConfig = 2
	// workerExitExhausted signals replication exhaustion: the worker
	// observed the last replica of some rank die and the run must roll
	// back to the latest committed checkpoint wave.
	workerExitExhausted = 3
)

// regEventKind discriminates registry events surfaced to the coordinator.
type regEventKind int

const (
	evReady     regEventKind = iota // all workers joined; world broadcast sent
	evKillMe                        // worker reached a scheduled kill boundary
	evExhausted                     // worker reported replication exhaustion
	evDone                          // worker finished its application body
	evLost                          // worker control connection dropped
)

// regEvent is one control-plane observation.
type regEvent struct {
	kind regEventKind
	proc int
	msg  ctlMsg
}

// regConn is the registry's handle on one worker connection.
type regConn struct {
	mu  sync.Mutex    // sdr:lockrank regconn
	c   net.Conn      // closed without mu to interrupt a blocked serve
	enc *json.Encoder // guarded by mu
}

func (rc *regConn) send(m ctlMsg) error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	// sdr:holdblock-ok control-plane framing: the encoder lock is what keeps concurrent ctl messages unmixed
	return rc.enc.Encode(m)
}

// registry is the rendezvous + control service for one distributed epoch.
type registry struct {
	ln    net.Listener
	procs int
	ranks int
	store *ckpt.Store

	events chan regEvent

	// done is closed by Close; wg joins the accept loop and every serve /
	// rejoinFlow goroutine, so Close returns only once the control plane
	// is fully quiescent.
	done chan struct{}
	wg   sync.WaitGroup

	mu     sync.Mutex           // sdr:lockrank regmu
	open   map[net.Conn]bool    // guarded by mu; every accepted conn, registered or not
	conns  []*regConn           // guarded by mu; indexed by proc; nil until hello
	addrs  []string             // guarded by mu
	hosts  []string             // guarded by mu; per-proc host identities (hello's host field)
	joined int                  // guarded by mu
	saved  map[int]map[int]bool // guarded by mu; step → ranks whose writer saved
	closed bool                 // guarded by mu

	// lastSeen[proc] is the unix-nano stamp of the worker's last decoded
	// control message. Atomic, not mu-guarded: every serve goroutine
	// stamps it on every message — at 256 workers pinging twice a second
	// that is the control plane's hottest write, and funneling it through
	// regmu made liveness bookkeeping contend with rendezvous and
	// checkpoint traffic. The health probe batches its reads off the same
	// atomics (see stalest), so probe fan-out stays off the serve path.
	lastSeen []atomic.Int64

	// Rejoin (localized replay) state: worldSent marks the epoch's world
	// broadcast done, after which a hello is a relaunched worker. Each
	// in-flight rejoin waits on its own entry, keyed by the revived proc;
	// survivor acks carry that key (ctlMsg.For), so concurrent rejoins
	// proceed in parallel without cross-crediting — a hung survivor only
	// delays the joiners still missing ITS ack, never unrelated ones.
	worldSent   bool                // guarded by mu
	reviveWaits map[int]*reviveWait // guarded by mu

	// rejoinTimeout bounds how long a rejoin waits for survivor acks
	// before proceeding anyway (a hung survivor is the health probe's
	// problem); newRegistry defaults it when zero.
	rejoinTimeout time.Duration

	// obsAddrs mirrors addrs for the workers' observability endpoints
	// (hello's obs field); "" when a worker did not publish one.
	obsAddrs []string
}

// reviveWait tracks one rejoin handshake: the acks still owed and the
// channel closed when the count reaches zero.
type reviveWait struct {
	left int
	ch   chan struct{}
}

// newRegistry starts the rendezvous registry for an epoch of `procs`
// workers over `ranks` logical ranks, committing checkpoint waves into
// store as workers report writer saves. rejoinTimeout bounds each rejoin
// handshake's wait for survivor acks (0 = the 10s default).
func newRegistry(procs, ranks int, store *ckpt.Store, rejoinTimeout time.Duration) (*registry, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("cluster: registry listen: %w", err)
	}
	if rejoinTimeout <= 0 {
		rejoinTimeout = 10 * time.Second
	}
	r := &registry{
		ln:            ln,
		procs:         procs,
		ranks:         ranks,
		store:         store,
		events:        make(chan regEvent, 4*procs+16),
		done:          make(chan struct{}),
		open:          make(map[net.Conn]bool),
		conns:         make([]*regConn, procs),
		addrs:         make([]string, procs),
		hosts:         make([]string, procs),
		obsAddrs:      make([]string, procs),
		lastSeen:      make([]atomic.Int64, procs),
		saved:         make(map[int]map[int]bool),
		reviveWaits:   make(map[int]*reviveWait),
		rejoinTimeout: rejoinTimeout,
	}
	r.wg.Add(1)
	go r.acceptLoop()
	return r, nil
}

// emit surfaces one event to the coordinator, giving up if the registry
// is shutting down (the coordinator has stopped draining by then).
func (r *registry) emit(ev regEvent) {
	select {
	case r.events <- ev:
	case <-r.done:
	}
}

// Addr returns the registry's listen address (the worker env contract's
// SDR_DIST_REGISTRY value).
func (r *registry) Addr() string { return r.ln.Addr().String() }

func (r *registry) acceptLoop() {
	defer r.wg.Done()
	for {
		c, err := r.ln.Accept()
		if err != nil {
			return // listener closed: epoch over
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			c.Close()
			continue
		}
		// Track the raw conn so Close can unblock a serve goroutine still
		// stuck in its hello decode (it is not in r.conns yet). Adding to
		// the WaitGroup here is safe against a concurrent Close: the
		// accept loop holds its own count, so the group cannot have hit
		// zero, and r.closed (checked above under mu) gates the race.
		r.open[c] = true
		r.wg.Add(1)
		r.mu.Unlock()
		go r.serve(c)
	}
}

// serve handles one worker connection: hello, then the event stream.
func (r *registry) serve(c net.Conn) {
	defer r.wg.Done()
	defer func() {
		r.mu.Lock()
		delete(r.open, c)
		r.mu.Unlock()
	}()
	dec := json.NewDecoder(c)
	var hello ctlMsg
	if err := dec.Decode(&hello); err != nil || hello.Op != opHello {
		c.Close()
		return
	}
	proc := hello.Proc
	if proc < 0 || proc >= r.procs {
		c.Close()
		return
	}

	rc := &regConn{c: c, enc: json.NewEncoder(c)}
	r.mu.Lock()
	if r.conns[proc] != nil {
		r.mu.Unlock()
		c.Close() // duplicate registration
		return
	}
	rejoin := r.worldSent
	r.conns[proc] = rc
	r.addrs[proc] = hello.Addr
	r.hosts[proc] = hello.Host
	r.obsAddrs[proc] = hello.Obs
	r.lastSeen[proc].Store(time.Now().UnixNano())
	ready := false
	var world, hosts []string
	if !rejoin {
		r.joined++
		if ready = r.joined == r.procs; ready {
			r.worldSent = true
			world = append([]string(nil), r.addrs...)
			hosts = append([]string(nil), r.hosts...)
		}
	}
	r.mu.Unlock()

	if ready {
		// Every worker's listener is up: publish the world table (with the
		// hostname table for ring negotiation). From this moment peers may
		// dial each other.
		r.broadcast(ctlMsg{Op: opWorld, Addrs: world, Hosts: hosts}, -1)
		r.emit(regEvent{kind: evReady})
	}
	if rejoin {
		// A relaunched worker (localized replay). Point every survivor's
		// peer wire at the new incarnation and wait for their acks before
		// handing over the world table — the joiner must not start its
		// recovery broadcast while any survivor still fail-stop-drops
		// traffic to it. Each handshake waits on its own per-proc entry
		// (acks carry the revived proc in ctlMsg.For), so concurrent
		// rejoins run in parallel: a survivor hung on one joiner's ack
		// never stalls another joiner whose acks are all in. The wait runs
		// in its own goroutine so THIS goroutine can keep decoding the
		// joiner's traffic — a still-handshaking joiner must be able to
		// acknowledge OTHER rejoins (its control stream carries reviveok
		// messages while it waits for its own world table).
		r.wg.Add(1)
		go r.rejoinFlow(proc, rc, hello.Addr)
	}

	for {
		var m ctlMsg
		if err := dec.Decode(&m); err != nil {
			r.mu.Lock()
			if r.conns[proc] == rc {
				r.conns[proc] = nil
			}
			r.mu.Unlock()
			r.emit(regEvent{kind: evLost, proc: proc})
			return
		}
		r.lastSeen[proc].Store(time.Now().UnixNano())
		switch m.Op {
		case opPing:
			// liveness only
		case opReviveAck:
			// Credit the ack to the handshake it names. A late ack for a
			// handshake already released by its deadline finds no entry
			// and is dropped.
			r.mu.Lock()
			if w := r.reviveWaits[m.For]; w != nil {
				w.left--
				if w.left == 0 {
					close(w.ch)
					delete(r.reviveWaits, m.For)
				}
			}
			r.mu.Unlock()
		case opCkpt:
			r.noteCkpt(m.Rank, m.Step)
		case opKillMe:
			r.emit(regEvent{kind: evKillMe, proc: proc, msg: m})
		case opExhausted:
			r.emit(regEvent{kind: evExhausted, proc: proc, msg: m})
		case opDone:
			r.emit(regEvent{kind: evDone, proc: proc, msg: m})
		}
	}
}

// rejoinFlow runs one relaunched worker's revive handshake: broadcast the
// new address, wait (bounded by rejoinTimeout) for every live peer's
// For-keyed ack, then hand the joiner its world table. Runs concurrently
// with the joiner's serve loop.
func (r *registry) rejoinFlow(proc int, rc *regConn, addr string) {
	defer r.wg.Done()
	r.mu.Lock()
	live := 0
	for p, other := range r.conns {
		if other != nil && p != proc {
			live++
		}
	}
	var ch chan struct{}
	if live > 0 {
		ch = make(chan struct{})
		r.reviveWaits[proc] = &reviveWait{left: live, ch: ch}
	}
	r.mu.Unlock()
	if live > 0 {
		r.broadcast(ctlMsg{Op: opRevive, Proc: proc, Addr: addr}, proc)
		timer := time.NewTimer(r.rejoinTimeout)
		select {
		case <-ch:
			timer.Stop()
		case <-timer.C:
			// A hung survivor; the coordinator's health probe will deal
			// with it. Proceed — worst case its traffic to the joiner is
			// dropped a little longer.
			mRejoinTimeouts.Inc()
		case <-r.done:
			// Registry shutting down mid-handshake: nobody is left to
			// receive the world table, stop here.
			timer.Stop()
			r.mu.Lock()
			delete(r.reviveWaits, proc)
			r.mu.Unlock()
			return
		}
		r.mu.Lock()
		delete(r.reviveWaits, proc)
		r.mu.Unlock()
	}
	// The world table must reflect peers revived while this handshake
	// waited. The hostname table rides along for contract uniformity,
	// though a relaunched joiner never arms rings (its peers banned the
	// pair when the previous incarnation died).
	r.mu.Lock()
	world := append([]string(nil), r.addrs...)
	hosts := append([]string(nil), r.hosts...)
	r.mu.Unlock()
	_ = rc.send(ctlMsg{Op: opWorld, Addrs: world, Hosts: hosts})
}

// noteCkpt mirrors runState.noteCkpt across process boundaries: count
// writer saves per wave, commit and prune once every rank reported.
func (r *registry) noteCkpt(rank, step int) {
	if r.store == nil || rank < 0 || rank >= r.ranks {
		return
	}
	r.mu.Lock()
	saved := r.saved[step]
	if saved == nil {
		saved = make(map[int]bool)
		r.saved[step] = saved
	}
	saved[rank] = true
	complete := len(saved) == r.ranks
	r.mu.Unlock()
	if !complete {
		return
	}
	// Commit/prune failures are not fatal to the epoch: the wave simply
	// stays uncommitted and rollback selects an older one.
	if err := r.store.Commit(step); err == nil {
		_ = r.store.Prune(step)
	}
}

// broadcast sends m to every connected worker except `skip` (-1 = none).
func (r *registry) broadcast(m ctlMsg, skip int) {
	r.mu.Lock()
	conns := append([]*regConn(nil), r.conns...)
	r.mu.Unlock()
	for p, rc := range conns {
		if rc == nil || p == skip {
			continue
		}
		_ = rc.send(m) // a dead worker's send failure is handled via evLost
	}
}

// obsAddr returns proc's published observability address ("" if none).
func (r *registry) obsAddr(proc int) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if proc < 0 || proc >= len(r.obsAddrs) {
		return ""
	}
	return r.obsAddrs[proc]
}

// forget clears a dead worker's registration so a relaunched incarnation
// can register under the same proc ID. The old serve goroutine's cleanup
// compares the connection pointer before nil-ing the slot, so a slow EOF
// cannot clobber the replacement.
func (r *registry) forget(proc int) {
	r.mu.Lock()
	r.conns[proc] = nil
	r.mu.Unlock()
}

// announceDead broadcasts the failure notification for proc to every other
// worker — the distributed incarnation of detect.Service.broadcastFailure.
func (r *registry) announceDead(proc int) {
	r.broadcast(ctlMsg{Op: opDead, Proc: proc}, proc)
}

// stalest returns the proc with the oldest lastSeen among `live` and how
// stale it is. Used by the coordinator's health check. The probe batches:
// one short mu window snapshots which procs are registered, then the whole
// fan-out scan reads the atomic stamps off the lock — the serve goroutines
// stamping liveness never wait behind it.
func (r *registry) stalest(live func(int) bool) (int, time.Duration) {
	registered := make([]bool, r.procs)
	r.mu.Lock()
	for p := 0; p < r.procs; p++ {
		registered[p] = r.conns[p] != nil
	}
	r.mu.Unlock()
	proc, worst := -1, time.Duration(0)
	now := time.Now().UnixNano()
	for p := 0; p < r.procs; p++ {
		if !registered[p] || !live(p) {
			continue
		}
		if age := time.Duration(now - r.lastSeen[p].Load()); age > worst {
			proc, worst = p, age
		}
	}
	return proc, worst
}

// Close shuts the registry down: closes the listener and every accepted
// connection (registered or still in its hello), releases any rejoin
// handshake still waiting, and joins every control-plane goroutine.
func (r *registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	open := make([]net.Conn, 0, len(r.open))
	for c := range r.open {
		open = append(open, c)
	}
	r.mu.Unlock()
	close(r.done)
	r.ln.Close()
	for _, c := range open {
		c.Close()
	}
	r.wg.Wait()
}
