package cluster

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/transport"
)

// The worker environment contract (the Env* names and their typed
// accessors) lives in env.go.

// DistConfig describes one distributed run: the same knobs as Config, but
// executed as real OS processes (one per layout slot) under a
// coordinator.
type DistConfig struct {
	Ranks       int
	Replication int
	Protocol    Protocol

	// Failures schedules SIGKILLs: when the victim worker reaches
	// Step(AtStep) it reports the boundary and the coordinator kills the
	// process. Events fire at most once across restart epochs.
	Failures []FailureEvent

	// UnreplicatedRanks and Degrees select partial replication exactly
	// as in Config: only the replicas the degree vector names are
	// spawned as OS processes (Σ degrees workers, not r·n).
	UnreplicatedRanks []int
	Degrees           []int

	// CheckpointDir is the shared checkpoint store — the rollback medium.
	// Required for the second rung of the recovery ladder; without it,
	// replication exhaustion is fatal.
	CheckpointDir string

	// RecoveryMode picks the ladder shape above substitution, exactly as
	// in Config: RecoveryLog relaunches a dead degree-1 rank alone (a
	// single fresh OS process restored from its own newest checkpoint +
	// replay state, re-fed from the survivors' sender logs) instead of
	// tearing the whole epoch down.
	RecoveryMode RecoveryMode

	// WorkerCmd is the argv used to exec one worker (default: this
	// binary, re-entered in worker mode via the env contract).
	WorkerCmd []string
	// WorkerEnv is extra environment for workers (application selection).
	WorkerEnv []string

	// LogSink receives the line-prefixed stdout/stderr streams of every
	// worker (default os.Stderr).
	LogSink io.Writer

	// Timeout is the per-epoch watchdog (default 2 minutes).
	Timeout time.Duration
	// HealthTimeout kills a worker whose control connection has been
	// silent for this long — the liveness probe backing the failure
	// detector (default 20s; workers ping every 500ms).
	HealthTimeout time.Duration
	// RejoinTimeout bounds a localized-replay rejoin handshake's wait for
	// survivor acks before the registry releases the joiner anyway
	// (default 10s). Tests shrink it; a timeout increments
	// sdr_cluster_rejoin_timeouts_total.
	RejoinTimeout time.Duration
	// MaxRestarts bounds rollback-restart cycles (default len(Failures)+1).
	MaxRestarts int

	// NoRing disables the colocated shared-memory ring transport: every
	// pair stays on loopback TCP. Rings are on by default — in a
	// single-host run every pair is colocated. RingBytes overrides the
	// per-pair ring capacity (0 = transport default).
	NoRing    bool
	RingBytes int
}

func (c DistConfig) timeout() time.Duration {
	if c.Timeout <= 0 {
		return 2 * time.Minute
	}
	return c.Timeout
}

func (c DistConfig) healthTimeout() time.Duration {
	if c.HealthTimeout <= 0 {
		return 20 * time.Second
	}
	return c.HealthTimeout
}

func (c DistConfig) replication() int {
	if c.Protocol == Native {
		return 1
	}
	if c.Replication <= 0 {
		return 2
	}
	return c.Replication
}

// layout builds the (possibly degree-aware) replica layout for the run.
func (c DistConfig) layout() (core.Layout, error) {
	degrees, err := degreeVector(c.Ranks, c.replication(), c.Degrees, c.UnreplicatedRanks)
	if err != nil {
		return core.Layout{}, err
	}
	return core.NewLayout(c.Ranks, c.replication(), degrees)
}

// recoveryLog reports whether the localized-replay rung is armed.
func (c DistConfig) recoveryLog() bool { return c.RecoveryMode == RecoveryLog }

// validateRecovery mirrors Config.validateRecovery for distributed runs.
func (c DistConfig) validateRecovery() error {
	return validateRecoveryMode(c.RecoveryMode, c.Protocol, c.CheckpointDir)
}

// formatDegrees renders a layout's degree vector for the env contract:
// comma-separated degrees, or "" for a uniform layout.
func formatDegrees(l core.Layout) string {
	ds := l.DegreeVector()
	if ds == nil {
		return ""
	}
	parts := make([]string, len(ds))
	for i, d := range ds {
		parts[i] = strconv.Itoa(d)
	}
	return strings.Join(parts, ",")
}

// DistProcReport is one worker's outcome in the final epoch.
type DistProcReport struct {
	Proc    transport.ProcID
	Rank    int
	Rep     int
	Crashed bool // scheduled SIGKILL realized
	Err     string
	Result  WorkerResult
}

// WorkerResult is the portable application result a distributed worker
// reports over the control plane (the cross-process counterpart of the
// in-process report's `any` result).
type WorkerResult struct {
	Checksum   float64
	Residual   float64
	Iterations int
}

// DistReport aggregates a distributed run. Like Report, Procs describes
// the final epoch while Elapsed accumulates across restart epochs.
type DistReport struct {
	Ranks       int
	Replication int
	Protocol    Protocol
	Procs       []DistProcReport
	Elapsed     time.Duration
	TimedOut    bool
	Restarts    int
	RestartWave int
	// Replays counts localized relaunches (single-worker respawns under
	// RecoveryLog); ReplayWave is the wave the last one resumed from.
	Replays    int
	ReplayWave int
	ExhaustErr error

	// Trace is the coordinator-side recovery-ladder event chain
	// (park/kill/detect/replay/rollback); the workers' own events surface
	// as TRACE lines in the log sink.
	Trace *obs.Trace
	// Workers holds the end-of-run /metrics scrape of every worker that
	// was alive when the final epoch completed.
	Workers []obs.WorkerStats
	// EpochsSec is each epoch's wall-clock duration, in order.
	EpochsSec []float64
}

// FirstError returns the first failure of the run, if any.
func (r *DistReport) FirstError() error {
	if r.TimedOut {
		return fmt.Errorf("cluster: distributed run timed out")
	}
	if r.ExhaustErr != nil {
		return r.ExhaustErr
	}
	for _, p := range r.Procs {
		if p.Err != "" {
			return fmt.Errorf("worker %d (rank %d rep %d): %s", p.Proc, p.Rank, p.Rep, p.Err)
		}
	}
	return nil
}

// ResultOf returns the result reported by replica rep of rank, or nil.
func (r *DistReport) ResultOf(rank, rep int) *DistProcReport {
	for i := range r.Procs {
		if r.Procs[i].Rank == rank && r.Procs[i].Rep == rep {
			return &r.Procs[i]
		}
	}
	return nil
}

// coreMode maps a protocol name to the replication scheme.
func (p Protocol) coreMode() core.Mode {
	switch p {
	case Mirror:
		return core.ModeMirror
	case Leader:
		return core.ModeLeader
	default:
		return core.ModeParallel
	}
}

// RunDistributed executes the application as real OS processes — one per
// slot of the (possibly degree-aware) layout — and returns the aggregated
// report. It is the cross-process generalization of
// Run's epoch loop: the coordinator spawns workers, hands out the
// rendezvous world through the registry, streams their output, SIGKILLs
// scheduled victims at their reported step boundaries, broadcasts failure
// notifications, and — when a worker reports replication exhaustion —
// tears the epoch down and respawns everything from the latest committed
// checkpoint wave in the shared store.
func RunDistributed(cfg DistConfig) *DistReport {
	rep := &DistReport{
		Ranks:       cfg.Ranks,
		Replication: cfg.replication(),
		Protocol:    cfg.Protocol,
		RestartWave: -1,
		ReplayWave:  -1,
		Trace:       obs.NewTrace(),
	}
	layout, err := cfg.layout()
	if err == nil {
		err = validateSchedule(layout, cfg.Failures, nil)
	}
	if err == nil {
		err = cfg.validateRecovery()
	}
	if err != nil {
		rep.ExhaustErr = err
		return rep
	}
	var store *ckpt.Store
	if cfg.CheckpointDir != "" {
		var err error
		store, err = ckpt.NewStore(cfg.CheckpointDir)
		if err != nil {
			rep.ExhaustErr = err
			return rep
		}
	}
	if len(cfg.WorkerCmd) == 0 {
		exe, err := os.Executable()
		if err != nil {
			rep.ExhaustErr = fmt.Errorf("cluster: cannot locate worker binary: %w", err)
			return rep
		}
		cfg.WorkerCmd = []string{exe}
	}
	if cfg.LogSink == nil {
		cfg.LogSink = os.Stderr
	}

	fired := make([]bool, len(cfg.Failures))
	maxRestarts := cfg.MaxRestarts
	if maxRestarts <= 0 {
		maxRestarts = len(cfg.Failures) + 1
	}
	restartWave := -1
	for {
		ep := runDistEpoch(cfg, layout, store, fired, restartWave, rep.Restarts, rep.Trace)
		rep.Elapsed += ep.elapsed
		rep.Procs = ep.procs
		rep.TimedOut = ep.timedOut
		rep.RestartWave = restartWave
		rep.Replays += ep.replays
		rep.Workers = ep.workers
		rep.EpochsSec = append(rep.EpochsSec, ep.elapsed.Seconds())
		mEpochs.Inc()
		gEpochMillis.Set(ep.elapsed.Milliseconds())
		if ep.replays > 0 {
			rep.ReplayWave = ep.replayWave
		}
		if ep.err != nil {
			rep.ExhaustErr = ep.err
			return rep
		}
		if !ep.exhausted || ep.timedOut {
			return rep
		}
		// Replication exhausted: climb to the rollback rung.
		if store == nil {
			rep.ExhaustErr = fmt.Errorf("cluster: replication exhausted and no CheckpointDir is configured for rollback")
			return rep
		}
		if rep.Restarts >= maxRestarts {
			rep.ExhaustErr = fmt.Errorf("cluster: replication exhausted; restart budget (%d) spent", maxRestarts)
			return rep
		}
		wave, err := store.LatestCommon(cfg.Ranks)
		if err != nil {
			rep.ExhaustErr = fmt.Errorf("cluster: rollback checkpoint scan: %w", err)
			return rep
		}
		if wave < 0 {
			rep.ExhaustErr = fmt.Errorf("cluster: replication exhausted before any committed checkpoint wave")
			return rep
		}
		// Pre-rollback replay states are epoch-relative — drop them so a
		// logging rank dying in the new epoch fails closed instead of
		// restoring counters from the torn-down one.
		if err := store.PruneLogs(); err != nil {
			rep.ExhaustErr = fmt.Errorf("cluster: rollback to wave %d: %w", wave, err)
			return rep
		}
		restartWave = wave
		rep.Restarts++
		mRestarts.Inc()
		ev := obs.Ev(obs.StageRollback,
			fmt.Sprintf("epoch torn down; respawning all workers from wave %d", wave))
		ev.Wave = wave
		rep.Trace.Emit(ev)
	}
}

// distEpoch is one epoch's outcome.
type distEpoch struct {
	procs      []DistProcReport
	elapsed    time.Duration
	exhausted  bool
	timedOut   bool
	replays    int
	replayWave int
	workers    []obs.WorkerStats
	err        error
}

// distWorker is the coordinator's handle on one spawned worker process.
type distWorker struct {
	proc      int
	rank, rep int
	cmd       *exec.Cmd
}

// procExit reports a worker process's termination.
type procExit struct {
	proc int
	code int // ExitCode(); -1 when signaled (SIGKILL)
}

// runDistEpoch spawns one full set of workers and runs the epoch's event
// loop until completion, exhaustion, or the watchdog.
func runDistEpoch(cfg DistConfig, layout core.Layout, store *ckpt.Store, fired []bool, wave, epoch int, tr *obs.Trace) distEpoch {
	procs := layout.Procs()

	reg, err := newRegistry(procs, cfg.Ranks, store, cfg.RejoinTimeout)
	if err != nil {
		return distEpoch{err: err}
	}
	defer reg.Close()
	emit := func(ev obs.Event) {
		if tr != nil {
			tr.Emit(ev)
		}
	}

	sink := &syncWriter{w: cfg.LogSink}
	exitCh := make(chan procExit, 4*procs)
	workers := make([]*distWorker, procs)

	// Per-epoch ring directory: colocated pairs negotiate mmap'd ring
	// files under it at rendezvous. Scoping the directory to one epoch
	// guarantees a rollback never resumes a torn ring stream — the
	// respawned world starts from empty rings.
	ringDir := ""
	if !cfg.NoRing {
		if d, err := os.MkdirTemp("", "sdr-ring-*"); err == nil {
			ringDir = d
			defer os.RemoveAll(d)
		}
	}

	// Fd-budget preflight: the coordinator holds two pipe ends and one
	// registry connection per worker, plus its listener and stdio. Raise
	// the soft RLIMIT_NOFILE toward that budget (or fail with both numbers
	// in hand) BEFORE the spawn loop — at 128–256 workers the default soft
	// limit of 1024 otherwise dies mid-spawn as EMFILE on pipe(2), which
	// presents as a half-built world instead of a clear answer.
	fdBudget := uint64(3*procs + 64)
	if limit, err := transport.EnsureFileLimit(fdBudget); err != nil {
		return distEpoch{err: fmt.Errorf("cluster: fd preflight for %d workers: %w", procs, err)}
	} else {
		fmt.Fprintf(sink, "[coordinator] fd preflight: budget %d for %d workers, soft limit %d\n", fdBudget, procs, limit)
	}

	start := time.Now()
	for p := 0; p < procs; p++ {
		w, err := spawnWorker(cfg, reg.Addr(), layout, p, fired, wave, epoch, sink, exitCh, -1, nil, ringDir)
		if err != nil {
			// Abort the partial epoch: kill what already started.
			for _, prev := range workers {
				if prev != nil {
					_ = prev.cmd.Process.Kill()
				}
			}
			return distEpoch{err: fmt.Errorf("cluster: spawn worker %d: %w", p, err), elapsed: time.Since(start)}
		}
		workers[p] = w
	}

	var (
		dead       = make(map[int]bool)   // exited (any reason)
		scheduled  = make(map[int]bool)   // SIGKILL sent for a fired event
		done       = make(map[int]ctlMsg) // app results
		exhausted  = false
		timedOut   = false
		tearing    = false
		exits      = 0
		spawnTotal = procs // grows with localized relaunches
		replays    = 0
		replayWave = -1
		epWorkers  []obs.WorkerStats
	)
	logRanks := logRankVector(cfg, layout)
	maxReplays := len(cfg.Failures) + 1
	watchdog := time.NewTimer(cfg.timeout())
	defer watchdog.Stop()
	health := time.NewTicker(time.Second)
	defer health.Stop()

	teardown := func() {
		if tearing {
			return
		}
		tearing = true
		for p, w := range workers {
			if !dead[p] {
				_ = w.cmd.Process.Kill()
			}
		}
	}
	complete := func() bool {
		for p := 0; p < procs; p++ {
			if !dead[p] {
				if _, ok := done[p]; !ok {
					return false
				}
			}
		}
		return true
	}
	// finish scrapes every live worker's /metrics — they are draining,
	// their obs servers still up — then releases them with the shutdown
	// broadcast. The scrape must come first: after shutdown the workers
	// exit and the endpoints vanish.
	finish := func() {
		tearing = true
		for p := 0; p < procs; p++ {
			if dead[p] {
				continue
			}
			w := workers[p]
			ws := obs.WorkerStats{Proc: p, Rank: w.rank, Rep: w.rep, Addr: reg.obsAddr(p)}
			if ws.Addr == "" {
				ws.Err = "no obs address published"
			} else if m, err := obs.Scrape(ws.Addr, 2*time.Second); err != nil {
				ws.Err = err.Error()
			} else {
				ws.Scraped = true
				ws.Metrics = m
			}
			epWorkers = append(epWorkers, ws)
		}
		reg.broadcast(ctlMsg{Op: opShutdown}, -1)
	}

	// relaunch attempts the localized-replay rung for a dead logging-rank
	// worker: validate the rank's newest (checkpoint, replay-state) pair
	// end to end, then respawn exactly one OS process restored from it.
	// Any failure reports false and the caller escalates to the global
	// rollback rung — fail closed, never garbage.
	relaunch := func(proc int) bool {
		rank := layout.RankOf(transport.ProcID(proc))
		if replays >= maxReplays {
			fmt.Fprintf(sink, "[coordinator] worker %d (rank %d): replay budget (%d) spent; global rollback\n", proc, rank, maxReplays)
			return false
		}
		seedWave, err := validateDistReplay(store, rank)
		if err != nil {
			fmt.Fprintf(sink, "[coordinator] worker %d (rank %d): localized replay unavailable (%v); global rollback\n", proc, rank, err)
			return false
		}
		var deadList []int
		for p := range dead {
			if dead[p] && p != proc {
				deadList = append(deadList, p)
			}
		}
		reg.forget(proc)
		w, err := spawnWorker(cfg, reg.Addr(), layout, proc, fired, wave, epoch, sink, exitCh, seedWave, deadList, ringDir)
		if err != nil {
			fmt.Fprintf(sink, "[coordinator] relaunch worker %d: %v; global rollback\n", proc, err)
			return false
		}
		workers[proc] = w
		dead[proc] = false
		spawnTotal++
		replays++
		replayWave = seedWave
		mReplays.Inc()
		ev := obs.Ev(obs.StageReplay,
			fmt.Sprintf("relaunched alone from wave %d; survivors replay their logs", seedWave))
		ev.Proc, ev.Rank, ev.Wave = proc, rank, seedWave
		emit(ev)
		fmt.Fprintf(sink, "[coordinator] worker %d (rank %d) relaunched alone from wave %d; survivors replay their logs\n", proc, rank, seedWave)
		return true
	}

	for exits < spawnTotal {
		select {
		case ev := <-reg.events:
			if tearing {
				continue
			}
			switch ev.kind {
			case evReady:
				// World table broadcast; workers are computing. Publish
				// where each worker's metrics live so a mid-run scraper
				// (CI smoke, an operator) can reach them.
				for p := 0; p < procs; p++ {
					if a := reg.obsAddr(p); a != "" && !dead[p] {
						w := workers[p]
						fmt.Fprintf(sink, "[coordinator] worker %d (r%d.%d) metrics at http://%s/metrics\n",
							p, w.rank, w.rep, a)
					}
				}
			case evKillMe:
				// The victim is parked at its step boundary: realize the
				// scheduled fail-stop with a real SIGKILL.
				w := workers[ev.proc]
				pev := obs.Ev(obs.StagePark, "worker parked at scheduled kill boundary")
				pev.Proc, pev.Rank, pev.Rep, pev.Step = ev.proc, w.rank, w.rep, ev.msg.Step
				emit(pev)
				for i, f := range cfg.Failures {
					if !fired[i] && f.Rank == w.rank && f.Rep == w.rep && f.AtStep == ev.msg.Step {
						fired[i] = true
						scheduled[ev.proc] = true
						_ = w.cmd.Process.Kill()
						kev := obs.Ev(obs.StageKill, "SIGKILL delivered")
						kev.Proc, kev.Rank, kev.Rep, kev.Step = ev.proc, w.rank, w.rep, ev.msg.Step
						emit(kev)
						break
					}
				}
			case evExhausted:
				exhausted = true
				teardown()
			case evDone:
				done[ev.proc] = ev.msg
				if complete() {
					finish() // workers exit on their own now
				}
			case evLost:
				// The process exit (right behind the EOF) carries the
				// classification; nothing to do here.
			}
		case ex := <-exitCh:
			exits++
			if dead[ex.proc] {
				continue
			}
			dead[ex.proc] = true
			if tearing {
				continue
			}
			if ex.code == workerExitExhausted {
				exhausted = true
				teardown()
				continue
			}
			if _, finished := done[ex.proc]; finished && ex.code == 0 {
				continue // clean exit after shutdown (rare ordering)
			}
			// A real process death — scheduled or not. Broadcast the
			// failure notification so the survivors' protocol layer can
			// substitute (or, for a logging-enabled rank, park for the
			// localized replay; or report exhaustion).
			reg.announceDead(ex.proc)
			wk := workers[ex.proc]
			dev := obs.Ev(obs.StageDetect, "worker process exited; failure broadcast to survivors")
			dev.Proc, dev.Rank, dev.Rep = ex.proc, wk.rank, wk.rep
			emit(dev)
			if rank := layout.RankOf(transport.ProcID(ex.proc)); logRanks != nil && logRanks[rank] {
				if !relaunch(ex.proc) {
					exhausted = true
					teardown()
				}
				continue
			}
			if complete() {
				finish()
			}
		case <-health.C:
			if tearing {
				continue
			}
			if p, age := reg.stalest(func(p int) bool { return !dead[p] }); p >= 0 && age > cfg.healthTimeout() {
				// Hung worker: the liveness probe treats it as failed.
				fmt.Fprintf(sink, "[coordinator] worker %d silent for %v; killing\n", p, age.Round(time.Second))
				mHealthKills.Inc()
				w := workers[p]
				kev := obs.Ev(obs.StageKill,
					fmt.Sprintf("liveness probe: control channel silent for %v", age.Round(time.Second)))
				kev.Proc, kev.Rank, kev.Rep = p, w.rank, w.rep
				emit(kev)
				_ = workers[p].cmd.Process.Kill()
			}
		case <-watchdog.C:
			timedOut = true
			teardown()
		}
	}

	elapsed := time.Since(start)
	reports := make([]DistProcReport, procs)
	for p := 0; p < procs; p++ {
		w := workers[p]
		pr := DistProcReport{Proc: transport.ProcID(p), Rank: w.rank, Rep: w.rep}
		if m, ok := done[p]; ok {
			pr.Result = WorkerResult{Checksum: m.Checksum, Residual: m.Residual, Iterations: m.Iterations}
			pr.Err = m.Err
		} else if scheduled[p] {
			pr.Crashed = true
		} else if !timedOut && !exhausted {
			pr.Err = "worker exited without a result"
		}
		reports[p] = pr
	}
	return distEpoch{procs: reports, elapsed: elapsed, exhausted: exhausted, timedOut: timedOut,
		replays: replays, replayWave: replayWave, workers: epWorkers}
}

// validateDistReplay checks rank's newest (checkpoint, replay-state) pair
// in the shared store — the same pre-flight the in-process launcher runs
// (loadReplay) — returning the wave a localized relaunch may restore from.
func validateDistReplay(store *ckpt.Store, rank int) (int, error) {
	seed, err := loadReplay(store, rank)
	if err != nil {
		return -1, err
	}
	return seed.wave, nil
}

// spawnWorker execs one worker process with the env contract filled in and
// its output streamed line-by-line to the sink. replayWave >= 0 marks a
// localized-replay relaunch (the worker restores that wave and announces
// itself in-band); deadProcs lists workers already dead at spawn time.
func spawnWorker(cfg DistConfig, regAddr string, layout core.Layout, proc int, fired []bool, wave, epoch int, sink io.Writer, exitCh chan<- procExit, replayWave int, deadProcs []int, ringDir string) (*distWorker, error) {
	rank := layout.RankOf(transport.ProcID(proc))
	rep := layout.RepOf(transport.ProcID(proc))

	// Steps at which this worker must park and await SIGKILL: its unfired
	// scheduled failures.
	var kills []string
	for i, f := range cfg.Failures {
		if !fired[i] && f.Rank == rank && f.Rep == rep {
			kills = append(kills, strconv.Itoa(f.AtStep))
		}
	}

	var deads []string
	for _, p := range deadProcs {
		deads = append(deads, strconv.Itoa(p))
	}
	cmd := exec.Command(cfg.WorkerCmd[0], cfg.WorkerCmd[1:]...)
	cmd.Env = append(os.Environ(), cfg.WorkerEnv...)
	cmd.Env = append(cmd.Env,
		EnvWorker+"=1",
		EnvRegistry+"="+regAddr,
		fmt.Sprintf("%s=%d", EnvProc, proc),
		fmt.Sprintf("%s=%d", EnvRanks, cfg.Ranks),
		fmt.Sprintf("%s=%d", EnvRepl, layout.R),
		EnvDegrees+"="+formatDegrees(layout),
		EnvProtocol+"="+string(cfg.Protocol),
		EnvCkptDir+"="+cfg.CheckpointDir,
		fmt.Sprintf("%s=%d", EnvWave, wave),
		fmt.Sprintf("%s=%d", EnvEpoch, epoch),
		EnvKills+"="+strings.Join(kills, ","),
		EnvRecovery+"="+string(cfg.RecoveryMode),
		fmt.Sprintf("%s=%d", EnvReplay, replayWave),
		EnvDead+"="+strings.Join(deads, ","),
		EnvRing+"="+ringDir,
	)
	if cfg.RingBytes > 0 {
		cmd.Env = append(cmd.Env, fmt.Sprintf("%s=%d", EnvRingBytes, cfg.RingBytes))
	}
	prefix := fmt.Sprintf("[r%d.%d] ", rank, rep)
	stdout := &lineWriter{w: sink, prefix: prefix}
	stderr := &lineWriter{w: sink, prefix: prefix}
	cmd.Stdout = stdout
	cmd.Stderr = stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	w := &distWorker{proc: proc, rank: rank, rep: rep, cmd: cmd}
	go func() {
		_ = cmd.Wait()
		// All pipe writes have completed once Wait returns; push out any
		// final unterminated line — often the most interesting bytes of a
		// SIGKILLed worker.
		stdout.flushRemainder()
		stderr.flushRemainder()
		code := -1
		if st := cmd.ProcessState; st != nil {
			code = st.ExitCode()
		}
		exitCh <- procExit{proc: proc, code: code}
	}()
	return w, nil
}

// syncWriter serializes concurrent writers onto one sink.
type syncWriter struct {
	mu sync.Mutex // sdr:lockrank sink
	w  io.Writer  // guarded by mu
}

func (sw *syncWriter) Write(p []byte) (int, error) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.w.Write(p)
}

// lineWriter prefixes every line of a worker's output stream, so the
// interleaved logs of r·n processes stay attributable.
type lineWriter struct {
	w      io.Writer
	prefix string
	buf    []byte
}

func (lw *lineWriter) Write(p []byte) (int, error) {
	lw.buf = append(lw.buf, p...)
	for {
		i := bytes.IndexByte(lw.buf, '\n')
		if i < 0 {
			break
		}
		fmt.Fprintf(lw.w, "%s%s\n", lw.prefix, lw.buf[:i])
		lw.buf = lw.buf[i+1:]
	}
	return len(p), nil
}

// flushRemainder emits a final unterminated line, if any. Only safe once
// no more Writes can occur (after cmd.Wait).
func (lw *lineWriter) flushRemainder() {
	if len(lw.buf) > 0 {
		fmt.Fprintf(lw.w, "%s%s\n", lw.prefix, lw.buf)
		lw.buf = nil
	}
}
