package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/mpi"
)

// PartialRow is one point of the partial-replication ablation: what
// fraction of ranks are replicated, the physical processes the
// degree-aware layout actually spawns, the wall-clock overhead against
// the unreplicated run, and the protocol traffic that overhead buys. The
// paper's closing section points to partial replication (Elliott et al.
// [6]) as the route past the 50 % efficiency ceiling of full dual
// replication; the O(q·r) message cost and the ack machinery are paid
// only where r > 1, which these columns make visible.
type PartialRow struct {
	ReplicatedRanks int
	TotalRanks      int
	PhysicalProcs   int
	Elapsed         time.Duration
	OverheadPct     float64
	AppMsgs         uint64 // application messages on the wire
	AckMsgs         uint64 // protocol acknowledgement messages
}

// AckPerApp is the protocol-overhead ratio: acks per application message.
func (r PartialRow) AckPerApp() float64 {
	if r.AppMsgs == 0 {
		return 0
	}
	return float64(r.AckMsgs) / float64(r.AppMsgs)
}

// PartialSweepQuarters are the sweep's points: quarter/4 of the ranks
// replicated, from the native baseline (0) to full dual replication (4).
var PartialSweepQuarters = []int{0, 1, 2, 3, 4}

// PartialSweepPoint defines one sweep point for n ranks: the protocol to
// run and the ranks left unreplicated. Quarter 0 is the native baseline.
// Shared by RunPartialSweep and BenchmarkPartialReplication so the
// CI-archived benchmark and the sdrbench table describe the same
// experiment.
func PartialSweepPoint(n, quarter int) (cluster.Protocol, []int) {
	if quarter == 0 {
		return cluster.Native, nil
	}
	var unrep []int
	for rank := n * quarter / 4; rank < n; rank++ {
		unrep = append(unrep, rank)
	}
	return cluster.SDR, unrep
}

// RunPartialSweep measures the CG proxy with 0 %, 25 %, 50 %, 75 % and
// 100 % of ranks replicated at a fixed logical rank count (experiment id:
// partial), recording wall time and message counts per point.
func RunPartialSweep(s Scale) ([]PartialRow, error) {
	n := s.Ranks
	w := func(c *mpi.Comm) apps.Result {
		return apps.CG(c, apps.CGParams{N: 1024 * s.Factor, Iters: 15 * s.Factor, Work: 3000})
	}

	var rows []PartialRow
	var base time.Duration
	for _, quarter := range PartialSweepQuarters {
		proto, unrep := PartialSweepPoint(n, quarter)
		rep := cluster.Run(cluster.Config{
			Ranks: n, Protocol: proto, Timeout: 5 * time.Minute,
			UnreplicatedRanks: unrep,
		}, func(env *cluster.Env) (any, error) {
			c := env.World
			c.Barrier()
			start := time.Now()
			w(c)
			c.Barrier()
			return time.Since(start), nil
		})
		if err := rep.FirstError(); err != nil {
			return nil, fmt.Errorf("partial %d/4: %w", quarter, err)
		}
		var worst time.Duration
		for _, p := range rep.Procs {
			if p.Rep != 0 {
				continue
			}
			if d := p.Result.(time.Duration); d > worst {
				worst = d
			}
		}
		if quarter == 0 {
			base = worst
		}
		rows = append(rows, PartialRow{
			ReplicatedRanks: n * quarter / 4,
			TotalRanks:      n,
			PhysicalProcs:   len(rep.Procs),
			Elapsed:         worst,
			OverheadPct:     (worst.Seconds() - base.Seconds()) / base.Seconds() * 100,
			AppMsgs:         rep.Stats.AppMsgs(),
			AckMsgs:         rep.Stats.AckMsgs(),
		})
	}
	return rows, nil
}

// RenderPartial prints the sweep.
func RenderPartial(w io.Writer, rows []PartialRow) {
	fmt.Fprintln(w, "Partial replication ablation (CG proxy; §5 outlook / MR-MPI feature)")
	fmt.Fprintf(w, "%-12s %8s %12s %14s %10s %10s %9s\n",
		"replicated", "procs", "time (s)", "overhead (%)", "app msgs", "ack msgs", "acks/app")
	for _, r := range rows {
		fmt.Fprintf(w, "%6d/%-5d %8d %12.3f %14.2f %10d %10d %9.3f\n",
			r.ReplicatedRanks, r.TotalRanks, r.PhysicalProcs, r.Elapsed.Seconds(),
			r.OverheadPct, r.AppMsgs, r.AckMsgs, r.AckPerApp())
	}
}
