package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/mpi"
)

// PartialRow is one point of the partial-replication sweep: what fraction
// of ranks are replicated, the physical processes consumed, and the
// wall-clock overhead against the unreplicated run. The paper's closing
// section points to partial replication (Elliott et al. [6]) as the route
// past the 50 % efficiency ceiling of full dual replication; MR-MPI
// already offered it. Here it falls out of the substitution machinery.
type PartialRow struct {
	ReplicatedRanks int
	TotalRanks      int
	PhysicalProcs   int
	Elapsed         time.Duration
	OverheadPct     float64
}

// RunPartialSweep measures the CG proxy with 0 %, 25 %, 50 %, 75 % and
// 100 % of ranks replicated (experiment id: partial).
func RunPartialSweep(s Scale) ([]PartialRow, error) {
	n := s.Ranks
	w := func(c *mpi.Comm) apps.Result {
		return apps.CG(c, apps.CGParams{N: 1024 * s.Factor, Iters: 15 * s.Factor, Work: 3000})
	}

	run := func(unreplicated []int, proto cluster.Protocol) (time.Duration, error) {
		rep := cluster.Run(cluster.Config{
			Ranks: n, Protocol: proto, Timeout: 5 * time.Minute,
			UnreplicatedRanks: unreplicated,
		}, func(env *cluster.Env) (any, error) {
			c := env.World
			c.Barrier()
			start := time.Now()
			w(c)
			c.Barrier()
			return time.Since(start), nil
		})
		if err := rep.FirstError(); err != nil {
			return 0, err
		}
		var worst time.Duration
		for _, p := range rep.Procs {
			if p.Phantom || p.Rep != 0 {
				continue
			}
			if d := p.Result.(time.Duration); d > worst {
				worst = d
			}
		}
		return worst, nil
	}

	base, err := run(nil, cluster.Native)
	if err != nil {
		return nil, fmt.Errorf("partial baseline: %w", err)
	}

	var rows []PartialRow
	for _, quarter := range []int{0, 1, 2, 3, 4} {
		k := n * quarter / 4 // ranks replicated
		var unrep []int
		for rank := k; rank < n; rank++ {
			unrep = append(unrep, rank)
		}
		var d time.Duration
		if quarter == 0 {
			d = base
		} else {
			d, err = run(unrep, cluster.SDR)
			if err != nil {
				return nil, fmt.Errorf("partial %d/4: %w", quarter, err)
			}
		}
		rows = append(rows, PartialRow{
			ReplicatedRanks: k,
			TotalRanks:      n,
			PhysicalProcs:   n + k,
			Elapsed:         d,
			OverheadPct:     (d.Seconds() - base.Seconds()) / base.Seconds() * 100,
		})
	}
	return rows, nil
}

// RenderPartial prints the sweep.
func RenderPartial(w io.Writer, rows []PartialRow) {
	fmt.Fprintln(w, "Partial replication sweep (CG proxy; §5 outlook / MR-MPI feature)")
	fmt.Fprintf(w, "%-12s %10s %12s %14s\n", "replicated", "procs", "time (s)", "overhead (%)")
	for _, r := range rows {
		fmt.Fprintf(w, "%6d/%-5d %10d %12.3f %14.2f\n",
			r.ReplicatedRanks, r.TotalRanks, r.PhysicalProcs, r.Elapsed.Seconds(), r.OverheadPct)
	}
}
