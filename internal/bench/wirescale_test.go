package bench

import "testing"

func TestWireScaleBatchingAmortizesFlushes(t *testing.T) {
	// The acceptance property of the batch-first redesign, checked at
	// small scale: the windowed exchange must show frames-per-flush > 1
	// and strictly fewer flush syscalls per application message than the
	// per-message baseline, on both the TCP and the ring path.
	rows, err := WireScaleCurve([]int{8}, []int{2}, []int{256}, []string{"unbatched", "tcp", "ring"}, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	byMode := map[string]WireScaleRow{}
	for _, r := range rows {
		byMode[r.Mode] = r
	}
	base := byMode["unbatched"]
	if base.FlushesPerMsg() < 0.99 {
		t.Fatalf("unbatched baseline should pay ~1 flush per message, got %.3f", base.FlushesPerMsg())
	}
	for _, mode := range []string{"tcp", "ring"} {
		r := byMode[mode]
		if r.FramesPerFlush() <= 1 {
			t.Errorf("%s: frames/flush = %.2f, want > 1", mode, r.FramesPerFlush())
		}
		if r.FlushesPerMsg() >= base.FlushesPerMsg() {
			t.Errorf("%s: flushes/msg = %.3f, not below the per-message baseline %.3f",
				mode, r.FlushesPerMsg(), base.FlushesPerMsg())
		}
	}
	if ring := byMode["ring"]; ring.RingFrames == 0 {
		t.Error("ring mode moved no frames over the shared-memory path")
	}
}
