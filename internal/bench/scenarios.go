package bench

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/cluster"
)

// RunFig3 executes the Figure 3 scenario — the repeated send(p0)/send(p1)
// pattern with replica p¹₁ crashing mid-run — and writes a narrative of
// the outcome. Returns an error if any survivor misbehaves.
func RunFig3(w io.Writer, steps, failAt int) error {
	app := fig3App(steps)
	rep := cluster.Run(cluster.Config{
		Ranks: 2, Protocol: cluster.SDR, Timeout: time.Minute,
		Failures: []cluster.FailureEvent{{Rank: 1, Rep: 1, AtStep: failAt}},
	}, app)
	if err := rep.FirstError(); err != nil {
		return err
	}
	want := fig3Want(steps)
	fmt.Fprintf(w, "Figure 3 — crash of replica p1_1 at step %d of %d\n", failAt, steps)
	for _, p := range rep.Procs {
		if p.Crashed {
			fmt.Fprintf(w, "  rank %d replica %d: CRASHED (injected fail-stop)\n", p.Rank, p.Rep)
			continue
		}
		status := "OK"
		if p.Result != want {
			status = fmt.Sprintf("WRONG (%v, want %v)", p.Result, want)
		}
		fmt.Fprintf(w, "  rank %d replica %d: finished, result %v — %s\n", p.Rank, p.Rep, p.Result, status)
		if p.Result != want {
			return fmt.Errorf("fig3: survivor rank %d rep %d computed %v, want %v", p.Rank, p.Rep, p.Result, want)
		}
	}
	fmt.Fprintf(w, "  substitute p0_1 emitted rank 1's messages after the crash; acks=%d app msgs=%d\n",
		rep.Stats.AckMsgs(), rep.Stats.AppMsgs())
	return nil
}

// RunFig4 executes the Figure 4 scenario — crash then recovery of p¹₁ —
// and narrates it.
func RunFig4(w io.Writer, steps, failAt, recoverAt int) error {
	app := fig4App(steps)
	rep := cluster.Run(cluster.Config{
		Ranks: 2, Protocol: cluster.SDR, Timeout: time.Minute,
		Failures:   []cluster.FailureEvent{{Rank: 1, Rep: 1, AtStep: failAt}},
		Recoveries: []cluster.RecoveryEvent{{Rank: 1, Rep: 1, AtStep: recoverAt}},
	}, app)
	if err := rep.FirstError(); err != nil {
		return err
	}
	want := fig3Want(steps)
	fmt.Fprintf(w, "Figure 4 — crash of p1_1 at step %d, recovery at step %d of %d\n", failAt, recoverAt, steps)
	finished := 0
	for _, p := range rep.Procs {
		if p.Crashed {
			fmt.Fprintf(w, "  rank %d replica %d: crashed as scheduled\n", p.Rank, p.Rep)
			continue
		}
		finished++
		fmt.Fprintf(w, "  rank %d replica %d: finished with %v\n", p.Rank, p.Rep, p.Result)
		if p.Result != want {
			return fmt.Errorf("fig4: rank %d rep %d computed %v, want %v", p.Rank, p.Rep, p.Result, want)
		}
	}
	if finished != 4 {
		return fmt.Errorf("fig4: %d processes finished, want 4 (recovered replica included)", finished)
	}
	fmt.Fprintln(w, "  the forked replica resumed from the substitute's state and finished the run")
	return nil
}

// RunRollback executes the exhaustion + rollback scenario — both replicas
// of rank 1 die at the same step, the second rung of the recovery ladder —
// and narrates the teardown, the committed wave chosen, and the restarted
// run's results. Returns an error if the rollback run misbehaves.
func RunRollback(w io.Writer, steps, every, failAt int) error {
	dir, err := os.MkdirTemp("", "sdr-rollback-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	refDir, err := os.MkdirTemp("", "sdr-rollback-ref-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(refDir)

	app := ckptRing(steps, every)
	ref := cluster.Run(cluster.Config{
		Ranks: 2, Protocol: cluster.SDR, Timeout: time.Minute,
		CheckpointDir: refDir,
	}, app)
	if err := ref.FirstError(); err != nil {
		return fmt.Errorf("rollback reference run: %w", err)
	}

	rep := cluster.Run(cluster.Config{
		Ranks: 2, Protocol: cluster.SDR, Timeout: time.Minute,
		CheckpointDir: dir,
		Failures: []cluster.FailureEvent{
			{Rank: 1, Rep: 0, AtStep: failAt},
			{Rank: 1, Rep: 1, AtStep: failAt},
		},
	}, app)
	if err := rep.FirstError(); err != nil {
		return err
	}
	fmt.Fprintf(w, "Exhaustion + rollback — BOTH replicas of rank 1 die at step %d of %d (checkpoint every %d)\n",
		failAt, steps, every)
	fmt.Fprintln(w, "  replica substitution impossible: rank 1 has no survivor — replication is exhausted")
	if rep.Restarts == 0 {
		return fmt.Errorf("rollback: rank loss did not force a restart")
	}
	fmt.Fprintf(w, "  rollback: tore the run down, restarted %d time(s) from committed wave %d (%d steps re-executed)\n",
		rep.Restarts, rep.RestartWave, failAt-rep.RestartWave)
	for _, p := range rep.Procs {
		want := ref.ResultOf(p.Rank, p.Rep)
		status := "OK"
		if p.Result != want {
			status = fmt.Sprintf("WRONG (%v, want %v)", p.Result, want)
		}
		fmt.Fprintf(w, "  rank %d replica %d: finished, result %v — %s\n", p.Rank, p.Rep, p.Result, status)
		if p.Result != want {
			return fmt.Errorf("rollback: rank %d rep %d computed %v, want %v", p.Rank, p.Rep, p.Result, want)
		}
	}
	fmt.Fprintln(w, "  results are identical to a fault-free run: the recovery ladder's second rung held")
	return nil
}

func fig3App(steps int) cluster.AppFunc {
	return func(env *cluster.Env) (any, error) {
		c := env.World
		buf := make([]byte, 8)
		sum := uint64(0)
		for i := 0; i < steps; i++ {
			env.Step(i, nil)
			if c.Rank() == 1 {
				binary.LittleEndian.PutUint64(buf, uint64(i))
				c.Send(0, 0, buf)
				c.Recv(0, 1, buf)
				sum += binary.LittleEndian.Uint64(buf)
			} else {
				c.Recv(1, 0, buf)
				v := binary.LittleEndian.Uint64(buf) * 2
				binary.LittleEndian.PutUint64(buf, v)
				c.Send(1, 1, buf)
				sum += v
			}
		}
		return sum, nil
	}
}

func fig4App(steps int) cluster.AppFunc {
	return func(env *cluster.Env) (any, error) {
		c := env.World
		var step int
		var sum uint64
		if b := env.Restored(); b != nil {
			step = int(binary.LittleEndian.Uint64(b))
			sum = binary.LittleEndian.Uint64(b[8:])
		}
		snap := func() []byte {
			b := make([]byte, 16)
			binary.LittleEndian.PutUint64(b, uint64(step))
			binary.LittleEndian.PutUint64(b[8:], sum)
			return b
		}
		buf := make([]byte, 8)
		for ; step < steps; step++ {
			env.Step(step, snap)
			if c.Rank() == 1 {
				binary.LittleEndian.PutUint64(buf, uint64(step))
				c.Send(0, 0, buf)
				c.Recv(0, 1, buf)
				sum += binary.LittleEndian.Uint64(buf)
			} else {
				c.Recv(1, 0, buf)
				v := binary.LittleEndian.Uint64(buf) * 2
				binary.LittleEndian.PutUint64(buf, v)
				c.Send(1, 1, buf)
				sum += v
			}
		}
		return sum, nil
	}
}

func fig3Want(steps int) uint64 {
	w := uint64(0)
	for i := 0; i < steps; i++ {
		w += uint64(i) * 2
	}
	return w
}
