// Package bench regenerates the paper's evaluation artifacts: the NetPipe
// latency/throughput figures (7a, 7b), the NAS and wildcard-application
// overhead tables (1, 2), the anonymous-reception micro-benchmark
// (Figure 2), and the ablation comparisons (mirror vs parallel message
// complexity, leader vs leaderless ANY_SOURCE).
package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/transport"
)

// NetpipePoint is one message-size sample of the ping-pong sweep.
type NetpipePoint struct {
	Bytes          int
	LatencyUS      float64 // one-way latency, microseconds (half RTT)
	ThroughputMbps float64
	AppMsgs        uint64 // application messages on the wire for the run
	AckMsgs        uint64 // replication acks on the wire (0 for native)
}

// AckRatio is ack messages per application message — the protocol-traffic
// overhead the ack-coalescing fast path minimizes (0 for native).
func (p NetpipePoint) AckRatio() float64 {
	if p.AppMsgs == 0 {
		return 0
	}
	return float64(p.AckMsgs) / float64(p.AppMsgs)
}

// NetpipeSizes returns the sweep the paper plots: 1 B … 8 MiB.
func NetpipeSizes() []int {
	var sizes []int
	for s := 1; s <= 8<<20; s *= 4 {
		sizes = append(sizes, s)
	}
	return sizes
}

// netpipeIters picks the repetition count per size (more for small
// messages, as NetPipe does).
func netpipeIters(size int) int {
	switch {
	case size <= 1024:
		return 40
	case size <= 64<<10:
		return 16
	case size <= 1<<20:
		return 6
	default:
		return 3
	}
}

// netpipeDilation returns the time-dilation factor applied to the delay
// model for one message size. The simulation measures real elapsed time,
// and on a machine with few cores the goroutine-scheduling cost of each
// message event (~microseconds) would swamp the microsecond-scale wire
// latencies being modelled. Dilating the model uniformly — latency,
// bandwidth and CPU overhead together — slows the simulated network so
// scheduling noise becomes negligible, and the measurement is divided back
// by the factor. Large messages are transfer-dominated (milliseconds) and
// need little dilation.
func netpipeDilation(size int) float64 {
	switch {
	case size <= 4096:
		return 60
	case size <= 64<<10:
		return 25
	case size <= 1<<20:
		return 16
	default:
		// Rendezvous sizes: keep the simulated wire time well above the
		// host's real memcpy cost per transfer, so buffer copies do not
		// pollute the ack-gated critical path.
		return 32
	}
}

// dilated scales every time constant of the IB-20G model by f.
func dilated(f float64) *transport.DelayModel {
	d := transport.IB20G()
	return &transport.DelayModel{
		Latency:      time.Duration(float64(d.Latency) * f),
		BytesPerSec:  d.BytesPerSec / f,
		SendOverhead: time.Duration(float64(d.SendOverhead) * f),
	}
}

// Netpipe runs the two-rank ping-pong sweep under the given protocol on
// the IB-20G-calibrated delay model and returns one point per size. The
// measured quantity matches the paper's Figure 7: half the round-trip time
// of an MPI_Send/MPI_Recv exchange.
func Netpipe(proto cluster.Protocol, sizes []int) ([]NetpipePoint, error) {
	var points []NetpipePoint
	for _, size := range sizes {
		size := size
		iters := netpipeIters(size)
		f := netpipeDilation(size)
		rep := cluster.Run(cluster.Config{
			Ranks:    2,
			Protocol: proto,
			Delay:    dilated(f),
			Timeout:  10 * time.Minute,
		}, func(env *cluster.Env) (any, error) {
			c := env.World
			buf := make([]byte, size)
			rbuf := make([]byte, size)
			// One warm-up exchange, then the timed loop.
			c.Barrier()
			start := time.Now()
			for i := 0; i < iters; i++ {
				if c.Rank() == 0 {
					c.Send(1, 0, buf)
					c.Recv(1, 1, rbuf)
				} else {
					c.Recv(0, 0, rbuf)
					c.Send(0, 1, buf)
				}
			}
			return time.Since(start), nil
		})
		if err := rep.FirstError(); err != nil {
			return nil, fmt.Errorf("netpipe %s size %d: %w", proto, size, err)
		}
		elapsed, ok := rep.ResultOf(0, 0).(time.Duration)
		if !ok {
			return nil, fmt.Errorf("bench: unexpected netpipe result %T", rep.ResultOf(0, 0))
		}
		oneWay := elapsed.Seconds() / float64(2*iters) / f
		points = append(points, NetpipePoint{
			Bytes:          size,
			LatencyUS:      oneWay * 1e6,
			ThroughputMbps: float64(size) * 8 / oneWay / 1e6,
			AppMsgs:        rep.Stats.AppMsgs(),
			AckMsgs:        rep.Stats.AckMsgs(),
		})
	}
	return points, nil
}

// NetpipeComparison pairs native and SDR sweeps with the relative
// performance decrease, the quantity on Figure 7's right-hand axis.
type NetpipeComparison struct {
	Native []NetpipePoint
	SDR    []NetpipePoint
}

// RunNetpipe performs both sweeps.
func RunNetpipe(sizes []int) (*NetpipeComparison, error) {
	native, err := Netpipe(cluster.Native, sizes)
	if err != nil {
		return nil, fmt.Errorf("native sweep: %w", err)
	}
	sdr, err := Netpipe(cluster.SDR, sizes)
	if err != nil {
		return nil, fmt.Errorf("sdr sweep: %w", err)
	}
	return &NetpipeComparison{Native: native, SDR: sdr}, nil
}

// LatencyDecreasePct returns SDR's latency increase at point i, as a
// percentage of native latency.
func (nc *NetpipeComparison) LatencyDecreasePct(i int) float64 {
	return (nc.SDR[i].LatencyUS - nc.Native[i].LatencyUS) / nc.Native[i].LatencyUS * 100
}

// ThroughputDecreasePct returns SDR's throughput loss at point i, as a
// percentage of native throughput.
func (nc *NetpipeComparison) ThroughputDecreasePct(i int) float64 {
	return (nc.Native[i].ThroughputMbps - nc.SDR[i].ThroughputMbps) / nc.Native[i].ThroughputMbps * 100
}

// RenderFig7a writes the latency figure as a table (the paper's Figure 7a
// series: Open MPI, SDR-MPI, performance decrease), plus the SDR run's
// ack-per-application-message ratio the coalescing fast path targets.
func (nc *NetpipeComparison) RenderFig7a(w io.Writer) {
	fmt.Fprintln(w, "Figure 7a — NetPipe latency, IB-20G model (one-way, usec)")
	fmt.Fprintf(w, "%12s %14s %14s %12s %10s\n", "bytes", "native", "SDR-MPI", "decrease(%)", "acks/app")
	for i, p := range nc.Native {
		fmt.Fprintf(w, "%12d %14.2f %14.2f %12.1f %10.3f\n",
			p.Bytes, p.LatencyUS, nc.SDR[i].LatencyUS, nc.LatencyDecreasePct(i),
			nc.SDR[i].AckRatio())
	}
}

// RenderFig7b writes the throughput figure.
func (nc *NetpipeComparison) RenderFig7b(w io.Writer) {
	fmt.Fprintln(w, "Figure 7b — NetPipe throughput, IB-20G model (Mbps)")
	fmt.Fprintf(w, "%12s %14s %14s %12s\n", "bytes", "native", "SDR-MPI", "decrease(%)")
	for i, p := range nc.Native {
		fmt.Fprintf(w, "%12d %14.1f %14.1f %12.1f\n",
			p.Bytes, p.ThroughputMbps, nc.SDR[i].ThroughputMbps, nc.ThroughputDecreasePct(i))
	}
}

// worldRank is a small helper for apps needing rank as int.
func worldRank(c *mpi.Comm) int { return int(c.Rank()) }
