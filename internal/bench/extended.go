package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/trace"
)

// Extended evaluation beyond the paper's Tables 1–2: three more NAS
// proxies spanning communication regimes the original five do not cover
// (LU: fine-grained pipelined wavefront; IS: Alltoallv-dominated; EP: near
// zero communication), a replication-degree sweep, and the runnable form
// of the paper's §2.1 claim that master-worker codes are not
// send-deterministic.

// ExtendedNASWorkloads returns the three additional proxies at the given
// scale, with Work values tuned to each kernel's character (EP almost all
// compute, LU many tiny messages).
func ExtendedNASWorkloads(s Scale) []Workload {
	// Work values follow the same rule as NASWorkloads: the simulated
	// compute (timer waits — see apps.compute) dominates, and the real
	// CPU work per rank is kept small so few-core simulation hosts do not
	// turn duplicated computation into fake protocol overhead.
	f := s.Factor
	return []Workload{
		{"LU", s.Ranks, func(c *mpi.Comm) apps.Result {
			return apps.LU(c, apps.LUParams{NX: 16, NZ: 8 * f, Iters: 4 * f, Work: 3000})
		}},
		{"IS", s.Ranks, func(c *mpi.Comm) apps.Result {
			return apps.IS(c, apps.ISParams{KeysPerRank: 1024 * f, MaxKey: 1 << 16, Iters: 6 * f, Work: 30000})
		}},
		{"EP", s.Ranks, func(c *mpi.Comm) apps.Result {
			return apps.EP(c, apps.EPParams{Pairs: 10000 * f, Work: 80000})
		}},
	}
}

// --- Replication-degree sweep -----------------------------------------------

// DegreeRow is one line of the replication-degree ablation: the same
// workload under increasing r. Each extra replica adds one more ack per
// message to the sender's completion gate (r−1 total), which is the
// protocol's only r-dependent cost in a failure-free run.
type DegreeRow struct {
	R           int
	Wall        time.Duration
	OverheadPct float64 // versus the native (r=1) run
	AckMsgs     uint64
	AppMsgs     uint64
}

// RunDegreeSweep measures the CG proxy at r = 1 (native), 2 and 3,
// reporting the median of three runs per degree.
func RunDegreeSweep(s Scale) ([]DegreeRow, error) {
	w := Workload{"CG", s.Ranks, func(c *mpi.Comm) apps.Result {
		return apps.CG(c, apps.CGParams{N: 512 * s.Factor, Iters: 16 * s.Factor, Work: 8000})
	}}
	const reps = 3
	var rows []DegreeRow
	var base float64
	for _, r := range []int{1, 2, 3} {
		proto := cluster.SDR
		if r == 1 {
			proto = cluster.Native
		}
		type outcome struct{ D time.Duration }
		var walls []time.Duration
		var acks, appMsgs uint64
		for i := 0; i < reps; i++ {
			rep := cluster.Run(cluster.Config{
				Ranks: w.Ranks, Protocol: proto, Replication: r, Timeout: 5 * time.Minute,
			}, func(env *cluster.Env) (any, error) {
				c := env.World
				c.Barrier()
				start := time.Now()
				w.Run(c)
				c.Barrier()
				return outcome{D: time.Since(start)}, nil
			})
			if err := rep.FirstError(); err != nil {
				return nil, fmt.Errorf("degree sweep r=%d: %w", r, err)
			}
			var worst time.Duration
			for _, p := range rep.Procs {
				if p.Rep != 0 {
					continue
				}
				if d := p.Result.(outcome).D; d > worst {
					worst = d
				}
			}
			walls = append(walls, worst)
			acks = rep.Stats.AckMsgs()
			appMsgs = rep.Stats.AppMsgs()
		}
		sort.Slice(walls, func(i, j int) bool { return walls[i] < walls[j] })
		wall := walls[len(walls)/2]
		row := DegreeRow{R: r, Wall: wall, AckMsgs: acks, AppMsgs: appMsgs}
		if r == 1 {
			base = wall.Seconds()
		}
		row.OverheadPct = (wall.Seconds() - base) / base * 100
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderDegrees prints the replication-degree table.
func RenderDegrees(w io.Writer, rows []DegreeRow) {
	fmt.Fprintln(w, "Ablation — replication degree (CG proxy; acks per message = r−1)")
	fmt.Fprintf(w, "%3s %12s %14s %12s %12s\n", "r", "Wall (sec)", "Overhead (%)", "app msgs", "ack msgs")
	for _, r := range rows {
		fmt.Fprintf(w, "%3d %12.3f %14.2f %12d %12d\n", r.R, r.Wall.Seconds(), r.OverheadPct, r.AppMsgs, r.AckMsgs)
	}
}

// --- Send-determinism verdicts ----------------------------------------------

// DeterminismRow is one workload's verdict from the cross-replica send-
// sequence comparison.
type DeterminismRow struct {
	Name string
	// SendDeterministic reports whether every rank's replicas emitted
	// identical send sequences.
	SendDeterministic bool
	// Detail is the checker's divergence description (empty when
	// deterministic).
	Detail string
	// ChecksumsAgree reports whether the replicas' results matched —
	// demonstrating that output agreement does NOT imply
	// send-determinism.
	ChecksumsAgree bool
}

// RunDeterminismCheck executes representative workloads under dual
// replication with send tracing and classifies each: the paper's §2.1
// taxonomy (SPMD codes send-deterministic, master-worker not) as a
// measurement.
func RunDeterminismCheck(s Scale) ([]DeterminismRow, error) {
	type cand struct {
		name string
		app  cluster.AppFunc
	}
	cands := []cand{
		{"CG", func(env *cluster.Env) (any, error) {
			return apps.CG(env.World, apps.CGParams{N: 256 * s.Factor, Iters: 8, Work: 1}), nil
		}},
		{"HPCCG (ANY_SOURCE)", func(env *cluster.Env) (any, error) {
			return apps.HPCCG(env.World, apps.HPCCGParams{NX: 8, NY: 8, NZ: 4, Iters: 6, Work: 1}), nil
		}},
		{"Master-Worker", func(env *cluster.Env) (any, error) {
			rep := env.Rep
			return apps.MasterWorker(env.World, apps.MWParams{
				Tasks: 12, PerWorkerQuota: 4, Work: 200,
				ExtraDelay: func(task int) int { return ((task + rep*2) % 3) * 400 },
			}), nil
		}},
	}
	var rows []DeterminismRow
	for _, cd := range cands {
		rep := cluster.Run(cluster.Config{
			Ranks: 4, Protocol: cluster.SDR, Timeout: time.Minute,
			TraceSends: true, KeepEvents: 512,
		}, cd.app)
		if err := rep.FirstError(); err != nil {
			return nil, fmt.Errorf("determinism check %s: %w", cd.name, err)
		}
		row := DeterminismRow{Name: cd.name, SendDeterministic: true, ChecksumsAgree: true}
		for rank := 0; rank < 4; rank++ {
			var recs []*trace.Recorder
			var sums []float64
			for _, p := range rep.Procs {
				if p.Rank != rank {
					continue
				}
				recs = append(recs, rep.Recorders[p.Proc])
				sums = append(sums, p.Result.(apps.Result).Checksum)
			}
			if err := trace.CheckSendDeterminism(recs...); err != nil {
				row.SendDeterministic = false
				if row.Detail == "" {
					row.Detail = fmt.Sprintf("rank %d: %v", rank, err)
				}
			}
			for _, s := range sums[1:] {
				if s != sums[0] {
					row.ChecksumsAgree = false
				}
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderDeterminism prints the verdict table.
func RenderDeterminism(w io.Writer, rows []DeterminismRow) {
	fmt.Fprintln(w, "Send-determinism verdicts (dual replication, cross-replica send-sequence comparison)")
	fmt.Fprintf(w, "%-22s %-18s %-16s %s\n", "", "send-determ.", "results agree", "divergence")
	for _, r := range rows {
		sd := "yes"
		if !r.SendDeterministic {
			sd = "NO"
		}
		ca := "yes"
		if !r.ChecksumsAgree {
			ca = "NO"
		}
		fmt.Fprintf(w, "%-22s %-18s %-16s %s\n", r.Name, sd, ca, r.Detail)
	}
}
