package bench

import (
	"strings"
	"testing"
)

func TestExtendedNASTableShape(t *testing.T) {
	// A fast-scale run of the extended set: overheads must be finite and
	// the transparency invariant must hold.
	if ws := ExtendedNASWorkloads(Scale{Ranks: 4, Factor: 1}); len(ws) != 3 {
		t.Fatalf("expected 3 extended workloads, got %d", len(ws))
	}
	rows, err := CompareTable(quickExtended(), "sdr", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyRows(rows); err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Native <= 0 || r.Replicated <= 0 {
			t.Errorf("%s: non-positive durations %v / %v", r.Name, r.Native, r.Replicated)
		}
	}
	var sb strings.Builder
	RenderRows(&sb, "extended", rows)
	for _, name := range []string{"LU", "IS", "EP"} {
		if !strings.Contains(sb.String(), name) {
			t.Errorf("render missing %s:\n%s", name, sb.String())
		}
	}
}

func TestDegreeSweep(t *testing.T) {
	rows, err := RunDegreeSweep(Scale{Ranks: 4, Factor: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("expected 3 degrees, got %d", len(rows))
	}
	if rows[0].R != 1 || rows[1].R != 2 || rows[2].R != 3 {
		t.Fatalf("degrees = %v", rows)
	}
	if rows[0].AckMsgs != 0 {
		t.Errorf("native run recorded %d acks", rows[0].AckMsgs)
	}
	// Each extra replica multiplies application messages (parallel
	// protocol: O(q·r)) and adds one more ack per message.
	if rows[1].AppMsgs <= rows[0].AppMsgs {
		t.Errorf("r=2 app msgs %d not above native %d", rows[1].AppMsgs, rows[0].AppMsgs)
	}
	if rows[2].AckMsgs <= rows[1].AckMsgs {
		t.Errorf("r=3 acks %d not above r=2 acks %d", rows[2].AckMsgs, rows[1].AckMsgs)
	}
	var sb strings.Builder
	RenderDegrees(&sb, rows)
	if !strings.Contains(sb.String(), "replication degree") {
		t.Error("render missing title")
	}
}

func TestDeterminismVerdicts(t *testing.T) {
	rows, err := RunDeterminismCheck(Scale{Ranks: 4, Factor: 1})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]DeterminismRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	cg := byName["CG"]
	if !cg.SendDeterministic || !cg.ChecksumsAgree {
		t.Errorf("CG verdict: %+v", cg)
	}
	hp := byName["HPCCG (ANY_SOURCE)"]
	if !hp.SendDeterministic {
		t.Errorf("HPCCG flagged non-send-deterministic: %+v", hp)
	}
	mw := byName["Master-Worker"]
	if mw.SendDeterministic {
		t.Errorf("Master-Worker not flagged: %+v", mw)
	}
	if !mw.ChecksumsAgree {
		t.Errorf("Master-Worker checksums diverged (they must agree): %+v", mw)
	}
	if mw.Detail == "" {
		t.Error("Master-Worker verdict has no divergence detail")
	}
	var sb strings.Builder
	RenderDeterminism(&sb, rows)
	if !strings.Contains(sb.String(), "Master-Worker") || !strings.Contains(sb.String(), "NO") {
		t.Errorf("render:\n%s", sb.String())
	}
}

func TestEagerAblation(t *testing.T) {
	rows, err := RunEagerAblation(8<<10, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Mode != "eager" || rows[1].Mode != "rendezvous" {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		if r.Native <= 0 || r.SDR <= 0 {
			t.Errorf("%s: non-positive durations", r.Mode)
		}
	}
	// The rendezvous path takes more wire hops, so its native time must
	// exceed the eager path's.
	if rows[1].Native <= rows[0].Native {
		t.Errorf("rendezvous native %v not above eager native %v", rows[1].Native, rows[0].Native)
	}
	var sb strings.Builder
	RenderEager(&sb, 8<<10, 40, rows)
	if !strings.Contains(sb.String(), "rendezvous") {
		t.Error("render missing mode")
	}
}

// quickExtended returns test-speed variants of the extended workloads.
func quickExtended() []Workload {
	return []Workload{
		{"LU", 4, ExtendedNASWorkloads(Scale{Ranks: 4, Factor: 1})[0].Run},
		{"IS", 4, ExtendedNASWorkloads(Scale{Ranks: 4, Factor: 1})[1].Run},
		{"EP", 4, ExtendedNASWorkloads(Scale{Ranks: 4, Factor: 1})[2].Run},
	}
}
