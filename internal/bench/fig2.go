package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/transport"
)

// Fig2Result compares anonymous-reception handling with and without
// send-determinism (the paper's Figure 2): the leader-based scheme adds a
// decision message to every wildcard reception's critical path and delays
// the followers' receive posting; the send-deterministic scheme decides
// locally.
type Fig2Result struct {
	// PerRecvUS is the mean wall-clock cost of one ANY_SOURCE reception
	// round, microseconds.
	PerRecvUS map[cluster.Protocol]float64
	// CtlMsgs counts protocol control messages (leader decisions).
	CtlMsgs map[cluster.Protocol]uint64
	// MaxUnexpected is the peak unexpected-queue depth observed at a
	// replica of the receiving rank (grows when receives post late).
	MaxUnexpected map[cluster.Protocol]int
}

// RunFig2 measures k wildcard reception rounds between two ranks under
// SDR and the leader baseline.
func RunFig2(k int) (*Fig2Result, error) {
	out := &Fig2Result{
		PerRecvUS:     make(map[cluster.Protocol]float64),
		CtlMsgs:       make(map[cluster.Protocol]uint64),
		MaxUnexpected: make(map[cluster.Protocol]int),
	}
	for _, proto := range []cluster.Protocol{cluster.SDR, cluster.Leader} {
		type res struct {
			d     time.Duration
			unexp int
		}
		rep := cluster.Run(cluster.Config{
			Ranks: 2, Protocol: proto, Timeout: 2 * time.Minute,
			// The extra decision hop only costs something on a network
			// with latency; use the paper's IB-20G model.
			Delay: transport.IB20G(),
		}, func(env *cluster.Env) (any, error) {
			c := env.World
			eng := c.Proc().Engine()
			buf := make([]byte, 64)
			c.Barrier()
			start := time.Now()
			for i := 0; i < k; i++ {
				if c.Rank() == 0 {
					// The Figure 2 pattern: an anonymous reception
					// answered by an ack-carrying reply.
					c.Recv(mpi.AnySource, 0, buf)
					c.Send(1, 1, buf[:8])
				} else {
					c.Send(0, 0, buf)
					c.Recv(0, 1, buf[:8])
				}
			}
			return res{time.Since(start), eng.UnexpectedHighWater()}, nil
		})
		if err := rep.FirstError(); err != nil {
			return nil, fmt.Errorf("fig2 %s: %w", proto, err)
		}
		var worst time.Duration
		maxU := 0
		for _, p := range rep.Procs {
			r := p.Result.(res)
			if p.Rank == 0 && r.d > worst {
				worst = r.d
			}
			if p.Rank == 0 && r.unexp > maxU {
				maxU = r.unexp
			}
		}
		out.PerRecvUS[proto] = worst.Seconds() * 1e6 / float64(k)
		out.CtlMsgs[proto] = rep.Stats.Msgs[6] // KindCtl
		out.MaxUnexpected[proto] = maxU
	}
	return out, nil
}

// Render writes the comparison.
func (r *Fig2Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 2 — ANY_SOURCE handling: leader-based vs send-deterministic")
	fmt.Fprintf(w, "%-10s %16s %14s %16s\n", "protocol", "per-recv (usec)", "ctl msgs", "max unexpected")
	for _, proto := range []cluster.Protocol{cluster.SDR, cluster.Leader} {
		fmt.Fprintf(w, "%-10s %16.2f %14d %16d\n",
			proto, r.PerRecvUS[proto], r.CtlMsgs[proto], r.MaxUnexpected[proto])
	}
}
