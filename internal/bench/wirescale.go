package bench

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
)

// Wire scaling curve (experiment wirescale): the batch-first transport
// measured at the wire level, ranks × exchange degree × message size,
// under three configurations —
//
//	unbatched  per-message writes (the pre-batch-API behavior, restored
//	           via SetBatchLimits(1,...)): the syscalls-per-message baseline
//	tcp        batched loopback TCP: frames coalesce into net.Buffers
//	           vectored writes at flush points
//	ring       batched shared-memory rings: every pair is colocated (one
//	           test process IS one host), so rendezvous negotiation moves
//	           all traffic onto the mmap rings
//
// The harness is an in-process mesh of real PeerWires — n networks of
// size n, proc i live on network i, exactly the worker topology — running
// a windowed neighbor exchange: each rank sends a window of messages to
// each of its `degree` ring-successors, flushes (the engine's pre-block
// trigger), and drains its own inbound. The quantities of interest come
// from the transport's own counters: frames per flush (batching density)
// and bytes per flush (payload moved per syscall or ring push).

// WireScaleConfig is one point of the curve.
type WireScaleConfig struct {
	Ranks  int
	Degree int // ring-successor neighbors each rank sends to
	Size   int // payload bytes per message
	Window int // messages per neighbor per iteration
	Iters  int
	Mode   string // "unbatched" | "tcp" | "ring"
}

// WireScaleRow is one measured point.
type WireScaleRow struct {
	WireScaleConfig
	Elapsed     time.Duration
	Msgs        uint64 // application messages through the wires
	Flushes     uint64 // vectored writes + ring pushes
	FlushFrames uint64 // frames those flushes carried
	BytesOut    uint64
	RingFrames  uint64 // frames that took the shared-memory path
}

// FramesPerFlush is the batching density: > 1 means the vectored write
// amortized syscalls across frames.
func (r WireScaleRow) FramesPerFlush() float64 {
	if r.Flushes == 0 {
		return 0
	}
	return float64(r.FlushFrames) / float64(r.Flushes)
}

// BytesPerFlush is payload bytes moved per flush syscall (or ring push).
func (r WireScaleRow) BytesPerFlush() float64 {
	if r.Flushes == 0 {
		return 0
	}
	return float64(r.BytesOut) / float64(r.Flushes)
}

// FlushesPerMsg is flush syscalls per application message — the quantity
// the batch-first redesign drives below 1.
func (r WireScaleRow) FlushesPerMsg() float64 {
	if r.Msgs == 0 {
		return 0
	}
	return float64(r.Flushes) / float64(r.Msgs)
}

// MsgsPerSec is wire throughput in messages per second.
func (r WireScaleRow) MsgsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Msgs) / r.Elapsed.Seconds()
}

// snapTransport reads the transport counter series the curve reports.
func snapTransport() (flushes, frames, bytesOut, ringOut float64) {
	s := obs.Default.Snapshot()
	return s["sdr_transport_flushes_total"],
		s["sdr_transport_flush_frames_total"],
		s[`sdr_transport_bytes_total{dir="out"}`],
		s[`sdr_transport_ring_frames_total{dir="out"}`]
}

// RunWireScale measures one configuration on a fresh in-process mesh.
func RunWireScale(cfg WireScaleConfig) (WireScaleRow, error) {
	n := cfg.Ranks
	if cfg.Degree < 1 || cfg.Degree >= n {
		return WireScaleRow{}, fmt.Errorf("wirescale: degree %d out of range for %d ranks", cfg.Degree, n)
	}
	if cfg.Window <= 0 {
		cfg.Window = 8
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 10
	}
	if cfg.Mode == "unbatched" {
		restore := transport.SetBatchLimits(1, 0, 0)
		defer restore()
	}

	// Fd preflight: the in-process mesh holds n listeners plus, in tcp
	// mode, both ends of every dialed exchange connection — at 256 ranks
	// that clears the default 1024 soft limit. Budget for the exchange
	// topology (2·degree peers per rank) with slack for stdio and the test
	// harness; failure surfaces before a half-built mesh starts timing.
	if _, err := transport.EnsureFileLimit(uint64(n + 4*n*cfg.Degree + 64)); err != nil {
		return WireScaleRow{}, err
	}

	// The mesh: one network + peer wire per proc, rendezvous done by hand.
	nws := make([]*transport.Network, n)
	pws := make([]*transport.PeerWire, n)
	defer func() {
		for i := n - 1; i >= 0; i-- {
			if pws[i] != nil {
				pws[i].Close()
			}
			if nws[i] != nil {
				nws[i].Close()
			}
		}
	}()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		nw, pw, err := transport.NewPeerNetwork(n, transport.ProcID(i), "")
		if err != nil {
			return WireScaleRow{}, err
		}
		nws[i], pws[i] = nw, pw
		addrs[i] = pw.Addr()
	}
	for i := 0; i < n; i++ {
		pws[i].SetPeers(addrs)
	}
	if cfg.Mode == "ring" {
		dir, err := os.MkdirTemp("", "sdr-wirescale-ring-*")
		if err != nil {
			return WireScaleRow{}, err
		}
		defer os.RemoveAll(dir)
		// Arm rings only for each rank's actual traffic partners (its
		// degree ring-successors and -predecessors). A real worker hosts
		// ONE wire per OS process, so eagerly attaching readers for all
		// n-1 colocated peers costs one scanner pass; this harness packs
		// all n wires into one process, where n wires × (n-1) eager
		// readers is a quadratic pile of mmaps no deployment ever pays.
		// Restricting attach to the exchange topology keeps per-wire
		// reader counts at 2·degree while every data-path byte still
		// crosses the shared-memory rings.
		for i := 0; i < n; i++ {
			colocated := make([]bool, n)
			for k := 1; k <= cfg.Degree; k++ {
				colocated[(i+k)%n] = true
				colocated[(i-k+n)%n] = true
			}
			pws[i].SetRingPeers(transport.RingConfig{Dir: dir}, colocated)
		}
	}

	flushes0, frames0, bytes0, ring0 := snapTransport()
	perRank := cfg.Window * cfg.Degree * cfg.Iters // sent == received per rank
	payload := make([]byte, cfg.Size)

	start := time.Now()
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			self := transport.ProcID(i)
			ep := nws[i].Endpoint(self)
			got := 0
			for it := 0; it < cfg.Iters; it++ {
				for w := 0; w < cfg.Window; w++ {
					for k := 1; k <= cfg.Degree; k++ {
						dst := transport.ProcID((i + k) % n)
						if err := ep.Send(&transport.Message{
							Dst: dst, Kind: transport.KindEager, Tag: it, Data: payload,
						}); err != nil {
							errs[i] = err
							return
						}
					}
				}
				// The engine's pre-block trigger: staged frames go out
				// before this rank turns to its inbound side.
				if err := nws[i].FlushWire(self, true); err != nil {
					errs[i] = err
					return
				}
				for _, m := range ep.Drain() {
					transport.FreeMessage(m)
					got++
				}
			}
			deadline := time.Now().Add(2 * time.Minute)
			for got < perRank {
				if time.Now().After(deadline) {
					errs[i] = fmt.Errorf("wirescale: rank %d received %d/%d", i, got, perRank)
					return
				}
				ep.WaitActivity(5 * time.Millisecond)
				for _, m := range ep.Drain() {
					transport.FreeMessage(m)
					got++
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return WireScaleRow{}, err
		}
	}

	flushes1, frames1, bytes1, ring1 := snapTransport()
	return WireScaleRow{
		WireScaleConfig: cfg,
		Elapsed:         elapsed,
		Msgs:            uint64(n * perRank),
		Flushes:         uint64(flushes1 - flushes0),
		FlushFrames:     uint64(frames1 - frames0),
		BytesOut:        uint64(bytes1 - bytes0),
		RingFrames:      uint64(ring1 - ring0),
	}, nil
}

// WireScaleCurve runs the full ranks × degree × size sweep for the given
// modes.
func WireScaleCurve(ranks, degrees, sizes []int, modes []string, window, iters int) ([]WireScaleRow, error) {
	var rows []WireScaleRow
	for _, n := range ranks {
		for _, d := range degrees {
			if d >= n {
				continue
			}
			for _, sz := range sizes {
				for _, mode := range modes {
					row, err := RunWireScale(WireScaleConfig{
						Ranks: n, Degree: d, Size: sz, Window: window, Iters: iters, Mode: mode,
					})
					if err != nil {
						return nil, fmt.Errorf("wirescale ranks=%d degree=%d size=%d mode=%s: %w", n, d, sz, mode, err)
					}
					rows = append(rows, row)
				}
			}
		}
	}
	return rows, nil
}

// RenderWireScale prints the curve.
func RenderWireScale(w io.Writer, rows []WireScaleRow) {
	fmt.Fprintln(w, "Wire scaling — batch-first transport, windowed neighbor exchange")
	fmt.Fprintf(w, "%6s %6s %7s %10s %10s %12s %12s %12s %12s\n",
		"ranks", "degree", "size", "mode", "time (s)", "msgs", "frames/flush", "bytes/flush", "flushes/msg")
	for _, r := range rows {
		fmt.Fprintf(w, "%6d %6d %7d %10s %10.3f %12d %12.2f %12.0f %12.3f\n",
			r.Ranks, r.Degree, r.Size, r.Mode, r.Elapsed.Seconds(), r.Msgs,
			r.FramesPerFlush(), r.BytesPerFlush(), r.FlushesPerMsg())
	}
}
