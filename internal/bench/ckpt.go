package bench

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/mpi"
)

// CkptRow is one line of the ablation-ckpt table: how the coordinated
// checkpoint interval trades steady-state overhead against the re-executed
// work a full rollback restart pays (§4.1's infrequent-checkpointing
// argument — replication makes rank loss rare, so the interval can be
// long).
type CkptRow struct {
	// Interval is the number of application steps between coordinated
	// checkpoint waves; 0 marks the fault-free reference row.
	Interval int
	Elapsed  time.Duration
	// Restarts counts full rollback-restart cycles; RestartWave is the
	// committed wave the last rollback resumed from.
	Restarts    int
	RestartWave int
	// WastedSteps is the re-executed work: fail step minus restart wave.
	WastedSteps int
}

// ckptRing is the ablation workload: an n-rank ring accumulation with a
// coordinated checkpoint every `every` steps, resuming from the
// launcher-seeded wave after a rollback restart.
func ckptRing(steps, every int) cluster.AppFunc {
	return func(env *cluster.Env) (any, error) {
		c := env.World
		n := c.Size()
		me := int(c.Rank())
		start := 0
		var sum uint64
		if b := env.Restored(); b != nil && env.RestoredStep() >= 0 {
			start = env.RestoredStep()
			sum = binary.LittleEndian.Uint64(b)
		}
		sbuf := make([]byte, 8)
		rbuf := make([]byte, 8)
		for i := start; i < steps; i++ {
			env.Step(i, nil)
			binary.LittleEndian.PutUint64(sbuf, uint64(me+i))
			req := c.Isend(mpi.Rank((me+1)%n), 0, sbuf)
			c.Recv(mpi.Rank((me-1+n)%n), 0, rbuf)
			mpi.Waitall(req)
			sum += binary.LittleEndian.Uint64(rbuf)
			if every > 0 && (i+1)%every == 0 {
				c.Barrier()
				state := make([]byte, 8)
				binary.LittleEndian.PutUint64(state, sum)
				if err := env.Checkpoint(i+1, state); err != nil {
					return nil, err
				}
			}
		}
		return sum, nil
	}
}

// RunCkptAblation measures checkpoint interval vs. restart cost
// (experiment ablation-ckpt): both replicas of rank 1 die at 3/4 of the
// run, forcing a full rollback restart; shorter intervals waste fewer
// re-executed steps but checkpoint (and barrier) more often. Row 0 is the
// fault-free reference.
func RunCkptAblation(s Scale) ([]CkptRow, error) {
	ranks := s.Ranks
	if ranks < 2 {
		ranks = 2
	}
	steps := 16 * s.Factor
	failAt := steps * 3 / 4

	run := func(every int, fail bool) (*cluster.Report, error) {
		dir, err := os.MkdirTemp("", "sdr-ablation-ckpt-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		cfg := cluster.Config{
			Ranks: ranks, Protocol: cluster.SDR, Timeout: 2 * time.Minute,
			CheckpointDir: dir,
		}
		if fail {
			cfg.Failures = []cluster.FailureEvent{
				{Rank: 1, Rep: 0, AtStep: failAt},
				{Rank: 1, Rep: 1, AtStep: failAt},
			}
		}
		rep := cluster.Run(cfg, ckptRing(steps, every))
		if err := rep.FirstError(); err != nil {
			return nil, fmt.Errorf("ablation-ckpt every=%d: %w", every, err)
		}
		return rep, nil
	}

	// Fault-free reference (checkpointing every 4 steps, no rollback).
	ref, err := run(4, false)
	if err != nil {
		return nil, err
	}
	rows := []CkptRow{{Interval: 0, Elapsed: ref.Elapsed, RestartWave: -1}}

	for _, every := range []int{1, 2, 4, 8} {
		rep, err := run(every, true)
		if err != nil {
			return nil, err
		}
		if rep.Restarts == 0 {
			return nil, fmt.Errorf("ablation-ckpt every=%d: rank loss did not force a rollback", every)
		}
		for _, p := range rep.Procs {
			if want := ref.ResultOf(p.Rank, p.Rep); p.Result != want {
				return nil, fmt.Errorf("ablation-ckpt every=%d: rank %d rep %d computed %v, fault-free %v",
					every, p.Rank, p.Rep, p.Result, want)
			}
		}
		rows = append(rows, CkptRow{
			Interval:    every,
			Elapsed:     rep.Elapsed,
			Restarts:    rep.Restarts,
			RestartWave: rep.RestartWave,
			WastedSteps: failAt - rep.RestartWave,
		})
	}
	return rows, nil
}

// RenderCkpt prints the ablation-ckpt rows, paper-table style.
func RenderCkpt(w io.Writer, s Scale, rows []CkptRow) {
	steps := 16 * s.Factor
	fmt.Fprintf(w, "Ablation — checkpoint interval vs. restart cost (ring, ranks=%d, steps=%d, rank 1 lost at step %d)\n",
		s.Ranks, steps, steps*3/4)
	fmt.Fprintf(w, "%-10s %12s %10s %14s %14s\n", "interval", "time (s)", "restarts", "restart wave", "wasted steps")
	for _, r := range rows {
		label := fmt.Sprintf("%d", r.Interval)
		if r.Interval == 0 {
			label = "fault-free"
		}
		fmt.Fprintf(w, "%-10s %12.3f %10d %14d %14d\n",
			label, r.Elapsed.Seconds(), r.Restarts, r.RestartWave, r.WastedSteps)
	}
}
