package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/transport"
)

// Eager/rendezvous ablation: the same payload exchanged through the two
// wire protocols (by overriding the eager limit), native vs SDR. It
// isolates where the replication cost lands on each path — on the eager
// path the sender retains a payload copy until the acks arrive; on the
// rendezvous path the sender's completion already waits for the
// receiver's CTS, so the ack adds less on top (§3.2/§3.3).

// EagerRow is one line of the eager/rendezvous ablation.
type EagerRow struct {
	Mode        string // "eager" or "rendezvous"
	Native      time.Duration
	SDR         time.Duration
	OverheadPct float64
}

// RunEagerAblation ping-pongs `rounds` messages of `size` bytes under
// both wire protocols, native vs SDR (median of reps).
func RunEagerAblation(size, rounds, reps int) ([]EagerRow, error) {
	modes := []struct {
		name  string
		limit int // EagerLimit override: above size → eager; 1 → rendezvous
	}{
		{"eager", size * 2},
		{"rendezvous", 1},
	}
	var rows []EagerRow
	for _, m := range modes {
		var per [2]time.Duration // native, sdr
		for i, proto := range []cluster.Protocol{cluster.Native, cluster.SDR} {
			var ds []time.Duration
			for rep := 0; rep < reps; rep++ {
				d, err := timePingPong(proto, m.limit, size, rounds)
				if err != nil {
					return nil, fmt.Errorf("eager ablation %s/%s: %w", m.name, proto, err)
				}
				ds = append(ds, d)
			}
			sort.Slice(ds, func(a, b int) bool { return ds[a] < ds[b] })
			per[i] = ds[len(ds)/2]
		}
		rows = append(rows, EagerRow{
			Mode:        m.name,
			Native:      per[0],
			SDR:         per[1],
			OverheadPct: (per[1].Seconds() - per[0].Seconds()) / per[0].Seconds() * 100,
		})
	}
	return rows, nil
}

// timePingPong measures `rounds` round trips of `size` bytes. A coarse
// delay model (50 µs hops, IB-20G bandwidth) makes the modelled wire time
// dominate goroutine-scheduling noise, so the reported overheads reflect
// protocol hops and ack placement rather than simulation-host contention.
func timePingPong(proto cluster.Protocol, eagerLimit, size, rounds int) (time.Duration, error) {
	type outcome struct{ D time.Duration }
	rep := cluster.Run(cluster.Config{
		Ranks: 2, Protocol: proto, EagerLimit: eagerLimit, Timeout: 2 * time.Minute,
		Delay: &transport.DelayModel{Latency: 50 * time.Microsecond, BytesPerSec: 1.6e9},
	}, func(env *cluster.Env) (any, error) {
		c := env.World
		buf := make([]byte, size)
		c.Barrier()
		start := time.Now()
		for i := 0; i < rounds; i++ {
			if c.Rank() == 0 {
				c.Send(1, 0, buf)
				c.Recv(1, 1, buf)
			} else {
				c.Recv(0, 0, buf)
				c.Send(0, 1, buf)
			}
		}
		c.Barrier()
		return outcome{D: time.Since(start)}, nil
	})
	if err := rep.FirstError(); err != nil {
		return 0, err
	}
	var worst time.Duration
	for _, p := range rep.Procs {
		if p.Rep != 0 {
			continue
		}
		if d := p.Result.(outcome).D; d > worst {
			worst = d
		}
	}
	return worst, nil
}

// RenderEager prints the ablation table.
func RenderEager(w io.Writer, size, rounds int, rows []EagerRow) {
	fmt.Fprintf(w, "Ablation — eager vs rendezvous wire protocol (%d B × %d round trips)\n", size, rounds)
	fmt.Fprintf(w, "%-12s %12s %12s %14s\n", "", "native", "SDR-MPI", "overhead (%)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %12v %12v %14.2f\n", r.Mode, r.Native.Round(time.Microsecond),
			r.SDR.Round(time.Microsecond), r.OverheadPct)
	}
}
