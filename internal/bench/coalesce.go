package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/cluster"
	"repro/internal/mpi"
)

// Ack-coalescing ablation (experiment ablation-coalesce): the same
// windowed neighbor exchange under SDR with discrete acks and with
// coalescing, plus the native baseline for scale. The quantity of
// interest is the AckMsgs/AppMsgs ratio — discrete acking pays one
// KindAck per (message, replica); coalescing batches the acks a receiver
// owes each replica into single messages, so the ratio collapses while
// the application traffic and results are identical.

// CoalesceRow is one configuration of the coalescing ablation.
type CoalesceRow struct {
	Label    string
	Elapsed  time.Duration
	AppMsgs  uint64
	AckMsgs  uint64
	AckBytes uint64
}

// AckRatio is ack messages per application message.
func (r CoalesceRow) AckRatio() float64 {
	if r.AppMsgs == 0 {
		return 0
	}
	return float64(r.AckMsgs) / float64(r.AppMsgs)
}

// coalesceApp is a windowed neighbor exchange: every rank exchanges a
// window of messages with its ring neighbors each iteration — the burst
// pattern stencil and pipeline codes produce, and the one coalescing is
// built for.
func coalesceApp(window, iters, size int) cluster.AppFunc {
	return func(env *cluster.Env) (any, error) {
		c := env.World
		n := c.Size()
		right := mpi.Rank((int(c.Rank()) + 1) % n)
		left := mpi.Rank((int(c.Rank()) + n - 1) % n)
		out := make([]byte, size)
		inR := make([]byte, size)
		inL := make([]byte, size)
		for it := 0; it < iters; it++ {
			reqs := make([]*mpi.Request, 0, 4*window)
			for w := 0; w < window; w++ {
				reqs = append(reqs,
					c.Irecv(left, w, inL),
					c.Irecv(right, window+w, inR))
			}
			for w := 0; w < window; w++ {
				reqs = append(reqs,
					c.Isend(right, w, out),
					c.Isend(left, window+w, out))
			}
			mpi.Waitall(reqs...)
		}
		c.Barrier()
		return nil, nil
	}
}

// RunCoalesceAblation measures the three configurations.
func RunCoalesceAblation(s Scale) ([]CoalesceRow, error) {
	window, iters, size := 8, 30*s.Factor, 256
	configs := []struct {
		label string
		cfg   cluster.Config
	}{
		{"native", cluster.Config{Ranks: s.Ranks, Protocol: cluster.Native}},
		{"sdr-discrete", cluster.Config{Ranks: s.Ranks, Protocol: cluster.SDR, NoAckCoalesce: true}},
		{"sdr-coalesced", cluster.Config{Ranks: s.Ranks, Protocol: cluster.SDR}},
	}
	var rows []CoalesceRow
	for _, c := range configs {
		c.cfg.Timeout = 2 * time.Minute
		app := coalesceApp(window, iters, size)
		start := time.Now()
		rep := cluster.Run(c.cfg, app)
		if err := rep.FirstError(); err != nil {
			return nil, fmt.Errorf("coalesce ablation %s: %w", c.label, err)
		}
		rows = append(rows, CoalesceRow{
			Label:    c.label,
			Elapsed:  time.Since(start),
			AppMsgs:  rep.Stats.AppMsgs(),
			AckMsgs:  rep.Stats.AckMsgs(),
			AckBytes: rep.Stats.Bytes[4],
		})
	}
	return rows, nil
}

// RenderCoalesce prints the ablation table.
func RenderCoalesce(w io.Writer, rows []CoalesceRow) {
	fmt.Fprintln(w, "Ablation — ack coalescing on a windowed neighbor exchange (SDR, r=2)")
	fmt.Fprintf(w, "%-14s %10s %12s %12s %12s\n", "config", "time (s)", "app msgs", "ack msgs", "acks/app")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %10.3f %12d %12d %12.3f\n",
			r.Label, r.Elapsed.Seconds(), r.AppMsgs, r.AckMsgs, r.AckRatio())
	}
}
