package bench

import (
	"strings"
	"testing"
)

func TestCoalesceAblation(t *testing.T) {
	rows, err := RunCoalesceAblation(Scale{Ranks: 4, Factor: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("expected 3 rows, got %d", len(rows))
	}
	native, discrete, coalesced := rows[0], rows[1], rows[2]
	if native.AckMsgs != 0 {
		t.Errorf("native run sent %d acks", native.AckMsgs)
	}
	if discrete.AckMsgs < discrete.AppMsgs/2 {
		t.Errorf("discrete acking should pay ~1 ack per app message: acks=%d app=%d",
			discrete.AckMsgs, discrete.AppMsgs)
	}
	if coalesced.AppMsgs != discrete.AppMsgs {
		t.Errorf("coalescing changed application traffic: %d vs %d",
			coalesced.AppMsgs, discrete.AppMsgs)
	}
	// The headline: strictly fewer ack messages than both the discrete
	// baseline and the application traffic, with real batching (at least
	// a 2x reduction on this windowed exchange).
	if coalesced.AckMsgs*2 > discrete.AckMsgs {
		t.Errorf("coalescing too weak: %d ack msgs vs discrete %d",
			coalesced.AckMsgs, discrete.AckMsgs)
	}
	var sb strings.Builder
	RenderCoalesce(&sb, rows)
	if !strings.Contains(sb.String(), "ack coalescing") {
		t.Error("render missing title")
	}
}
