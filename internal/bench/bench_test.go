package bench

import (
	"strings"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/mpi"
)

func TestNetpipeSizesSweep(t *testing.T) {
	sizes := NetpipeSizes()
	if sizes[0] != 1 {
		t.Fatalf("first size %d", sizes[0])
	}
	if sizes[len(sizes)-1] < 4<<20 {
		t.Fatalf("sweep should reach megabyte sizes, got max %d", sizes[len(sizes)-1])
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			t.Fatal("sizes must increase")
		}
	}
}

func TestNetpipeSmallSweep(t *testing.T) {
	// A fast two-point sweep exercising the whole measurement path.
	nc, err := RunNetpipe([]int{1, 1024})
	if err != nil {
		t.Fatal(err)
	}
	if len(nc.Native) != 2 || len(nc.SDR) != 2 {
		t.Fatalf("points: %d/%d", len(nc.Native), len(nc.SDR))
	}
	for i := range nc.Native {
		if nc.Native[i].LatencyUS <= 0 || nc.SDR[i].LatencyUS <= 0 {
			t.Fatal("non-positive latency")
		}
		if nc.Native[i].ThroughputMbps <= 0 {
			t.Fatal("non-positive throughput")
		}
	}
	// SDR must cost at least as much as native for tiny messages (the
	// ack is extra work however it is scheduled).
	if nc.SDR[0].LatencyUS < nc.Native[0].LatencyUS*0.8 {
		t.Errorf("suspicious: SDR (%v us) much faster than native (%v us)",
			nc.SDR[0].LatencyUS, nc.Native[0].LatencyUS)
	}
	var sb strings.Builder
	nc.RenderFig7a(&sb)
	nc.RenderFig7b(&sb)
	out := sb.String()
	if !strings.Contains(out, "Figure 7a") || !strings.Contains(out, "Figure 7b") {
		t.Error("render output missing headers")
	}
}

func TestCompareTableSmall(t *testing.T) {
	ws := []Workload{{
		Name:  "mini",
		Ranks: 2,
		Run: func(c *mpi.Comm) apps.Result {
			return apps.CG(c, apps.CGParams{N: 64, Iters: 4, Work: 100})
		},
	}}
	rows, err := CompareTable(ws, cluster.SDR, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Name != "mini" {
		t.Fatalf("rows: %+v", rows)
	}
	if rows[0].Native <= 0 || rows[0].Replicated <= 0 {
		t.Fatal("non-positive durations")
	}
	if err := VerifyRows(rows); err != nil {
		t.Fatalf("transparency violated: %v", err)
	}
	var sb strings.Builder
	RenderRows(&sb, "T", rows)
	if !strings.Contains(sb.String(), "mini") {
		t.Error("render missing row")
	}
}

func TestVerifyRowsCatchesDivergence(t *testing.T) {
	rows := []Row{{Name: "x", NativeSum: 1, ReplSum: 2}}
	if err := VerifyRows(rows); err == nil {
		t.Fatal("expected divergence error")
	}
}

func TestFig2Comparison(t *testing.T) {
	r, err := RunFig2(40)
	if err != nil {
		t.Fatal(err)
	}
	if r.PerRecvUS[cluster.SDR] <= 0 || r.PerRecvUS[cluster.Leader] <= 0 {
		t.Fatal("non-positive timings")
	}
	// The leader must emit one decision per wildcard reception per
	// follower; SDR none.
	if r.CtlMsgs[cluster.SDR] != 0 {
		t.Errorf("SDR sent %d control messages, want 0", r.CtlMsgs[cluster.SDR])
	}
	if r.CtlMsgs[cluster.Leader] != 40 {
		t.Errorf("leader sent %d decisions, want 40", r.CtlMsgs[cluster.Leader])
	}
	var sb strings.Builder
	r.Render(&sb)
	if !strings.Contains(sb.String(), "Figure 2") {
		t.Error("render missing header")
	}
}

func TestMirrorAblationComplexity(t *testing.T) {
	rows, err := RunMirrorAblation(Scale{Ranks: 4, Factor: 1})
	if err != nil {
		t.Fatal(err)
	}
	byProto := map[cluster.Protocol]AblationRow{}
	for _, r := range rows {
		byProto[r.Protocol] = r
	}
	q := byProto[cluster.Native].AppMsgs
	qs := byProto[cluster.SDR].AppMsgs
	qm := byProto[cluster.Mirror].AppMsgs
	// §2.4: parallel O(q·r), mirror O(q·r²), r = 2.
	if ratio := float64(qs) / float64(q); ratio < 1.9 || ratio > 2.1 {
		t.Errorf("parallel/native ratio %.2f, want ~2", ratio)
	}
	if ratio := float64(qm) / float64(q); ratio < 3.8 || ratio > 4.2 {
		t.Errorf("mirror/native ratio %.2f, want ~4", ratio)
	}
	if byProto[cluster.SDR].AckMsgs == 0 || byProto[cluster.Mirror].AckMsgs != 0 {
		t.Error("ack accounting wrong")
	}
}

func TestLeaderAblationDecisions(t *testing.T) {
	rows, err := RunLeaderAblation(Scale{Ranks: 4, Factor: 1})
	if err != nil {
		t.Fatal(err)
	}
	byProto := map[cluster.Protocol]AblationRow{}
	for _, r := range rows {
		byProto[r.Protocol] = r
	}
	if byProto[cluster.SDR].CtlMsgs != 0 {
		t.Errorf("SDR control messages: %d", byProto[cluster.SDR].CtlMsgs)
	}
	if byProto[cluster.Leader].CtlMsgs == 0 {
		t.Error("leader sent no decisions despite ANY_SOURCE receptions")
	}
}

func TestScenarioRunners(t *testing.T) {
	var sb strings.Builder
	if err := RunFig3(&sb, 8, 3); err != nil {
		t.Fatal(err)
	}
	if err := RunFig4(&sb, 10, 3, 6); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Figure 3") || !strings.Contains(out, "Figure 4") {
		t.Error("scenario narration missing")
	}
}

func TestRollbackScenarioRunner(t *testing.T) {
	var sb strings.Builder
	if err := RunRollback(&sb, 12, 3, 8); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "replication is exhausted") || !strings.Contains(out, "committed wave") {
		t.Errorf("rollback narration missing pieces:\n%s", out)
	}
}

func TestCkptAblationRows(t *testing.T) {
	rows, err := RunCkptAblation(Scale{Ranks: 2, Factor: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 || rows[0].Interval != 0 {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows[1:] {
		if r.Restarts < 1 {
			t.Errorf("interval %d: no rollback recorded", r.Interval)
		}
		// A shorter interval can never waste more steps than its own
		// length (the wave lags the failure by less than one interval).
		if r.WastedSteps < 0 || r.WastedSteps > r.Interval {
			t.Errorf("interval %d: wasted %d steps", r.Interval, r.WastedSteps)
		}
	}
	var sb strings.Builder
	RenderCkpt(&sb, Scale{Ranks: 2, Factor: 1}, rows)
	if !strings.Contains(sb.String(), "fault-free") {
		t.Error("render missing the reference row")
	}
}

func TestSDCDemoDetects(t *testing.T) {
	n, err := RunSDCDemo()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no corruption detected")
	}
}

func TestDilatedModelScaling(t *testing.T) {
	base := dilated(1)
	d2 := dilated(2)
	if d2.Latency != 2*base.Latency {
		t.Error("latency not scaled")
	}
	if d2.BytesPerSec != base.BytesPerSec/2 {
		t.Error("bandwidth not scaled")
	}
	if d2.SendOverhead != 2*base.SendOverhead {
		t.Error("overhead not scaled")
	}
}

func TestTimeWorkloadUsesBarrierWindow(t *testing.T) {
	w := Workload{"sleepy", 2, func(c *mpi.Comm) apps.Result {
		time.Sleep(20 * time.Millisecond)
		c.Barrier()
		return apps.Result{Checksum: 42}
	}}
	d, sum, err := timeWorkload(w, cluster.Native, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d < 20*time.Millisecond {
		t.Errorf("measured %v, expected at least the sleep", d)
	}
	if sum != 42 {
		t.Errorf("sum %v", sum)
	}
}
