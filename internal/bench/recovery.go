package bench

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/mpi"
)

// RecoveryRow is one point of the ablation-recovery experiment: the same
// unreplicated-rank kill handled by the two upper rungs of the recovery
// ladder. Under global rollback EVERY process re-executes from the last
// committed wave; under localized replay only the killed rank re-executes
// from its own wave while the survivors' sender logs bridge the gap — the
// re-executed-work column is the whole argument for the hybrid mode.
type RecoveryRow struct {
	Mode     cluster.RecoveryMode
	KillStep int
	Elapsed  time.Duration
	// ExecutedSteps counts every (process, step) execution across all
	// epochs; ReExecSteps is the excess over the fault-free ideal.
	ExecutedSteps int64
	ReExecSteps   int64
	Restarts      int
	Replays       int
}

// recoveryRing is the instrumented resumable ring workload: every executed
// step of every process ticks the shared counter, across relaunches and
// rollback epochs alike.
func recoveryRing(steps, every int, counter *atomic.Int64) cluster.AppFunc {
	return func(env *cluster.Env) (any, error) {
		c := env.World
		n := c.Size()
		me := int(c.Rank())
		start := 0
		var sum uint64
		if b := env.Restored(); len(b) == 8 && env.RestoredStep() >= 0 {
			start = env.RestoredStep()
			sum = binary.LittleEndian.Uint64(b)
		}
		sbuf := make([]byte, 8)
		rbuf := make([]byte, 8)
		for i := start; i < steps; i++ {
			env.Step(i, nil)
			counter.Add(1)
			binary.LittleEndian.PutUint64(sbuf, uint64(me*1000+i))
			req := c.Isend(mpi.Rank((me+1)%n), 0, sbuf)
			c.Recv(mpi.Rank((me-1+n)%n), 0, rbuf)
			mpi.Waitall(req)
			sum += binary.LittleEndian.Uint64(rbuf)
			if (i+1)%every == 0 {
				c.Barrier()
				state := make([]byte, 8)
				binary.LittleEndian.PutUint64(state, sum)
				if err := env.Checkpoint(i+1, state); err != nil {
					return nil, err
				}
			}
		}
		return sum, nil
	}
}

// RecoveryKillPoints returns the experiment's kill-step sweep for a run
// of `steps` steps: early, middle, and late in the execution, each one
// step past a checkpoint boundary so the kill discards real work.
func RecoveryKillPoints(steps int) []int {
	return []int{steps/4 + 1, steps/2 + 1, steps - 2}
}

// RunRecoveryAblation measures localized replay against global rollback
// (experiment ablation-recovery): a 4-rank ring with rank 1 unreplicated,
// rank 1 killed at each sweep point, once per recovery mode. Every run's
// results must equal the fault-free reference, localized replay must keep
// the survivors un-rolled-back (0 restarts), and — the paper's motivation
// for the hybrid — must re-execute strictly less work than the rollback
// run for the same kill point.
func RunRecoveryAblation(s Scale) ([]RecoveryRow, error) {
	const ranks = 4
	steps := 16 * s.Factor
	every := 4

	run := func(mode cluster.RecoveryMode, killAt int) (*cluster.Report, int64, error) {
		dir, err := os.MkdirTemp("", "sdr-ablation-recovery-*")
		if err != nil {
			return nil, 0, err
		}
		defer os.RemoveAll(dir)
		cfg := cluster.Config{
			Ranks: ranks, Protocol: cluster.SDR, Timeout: 2 * time.Minute,
			UnreplicatedRanks: []int{1},
			CheckpointDir:     dir,
			RecoveryMode:      mode,
		}
		if killAt >= 0 {
			cfg.Failures = []cluster.FailureEvent{{Rank: 1, Rep: 0, AtStep: killAt}}
		}
		var counter atomic.Int64
		rep := cluster.Run(cfg, recoveryRing(steps, every, &counter))
		if err := rep.FirstError(); err != nil {
			return nil, 0, fmt.Errorf("ablation-recovery mode=%s kill=%d: %w", mode, killAt, err)
		}
		return rep, counter.Load(), nil
	}

	ref, refSteps, err := run(cluster.RecoveryLog, -1)
	if err != nil {
		return nil, err
	}
	ideal := refSteps
	verify := func(rep *cluster.Report, mode cluster.RecoveryMode, killAt int) error {
		for _, p := range rep.Procs {
			if p.Crashed {
				continue
			}
			if want := ref.ResultOf(p.Rank, p.Rep); p.Result != want {
				return fmt.Errorf("ablation-recovery mode=%s kill=%d: rank %d rep %d computed %v, fault-free %v",
					mode, killAt, p.Rank, p.Rep, p.Result, want)
			}
		}
		return nil
	}

	var rows []RecoveryRow
	for _, killAt := range RecoveryKillPoints(steps) {
		var reexec [2]int64
		for i, mode := range []cluster.RecoveryMode{cluster.RecoveryRollback, cluster.RecoveryLog} {
			rep, executed, err := run(mode, killAt)
			if err != nil {
				return nil, err
			}
			if err := verify(rep, mode, killAt); err != nil {
				return nil, err
			}
			switch mode {
			case cluster.RecoveryRollback:
				if rep.Restarts == 0 {
					return nil, fmt.Errorf("ablation-recovery kill=%d: rollback mode did not restart", killAt)
				}
			case cluster.RecoveryLog:
				if rep.Restarts != 0 || rep.Replays == 0 {
					return nil, fmt.Errorf("ablation-recovery kill=%d: log mode restarts=%d replays=%d, want 0/>0",
						killAt, rep.Restarts, rep.Replays)
				}
			}
			reexec[i] = executed - ideal
			rows = append(rows, RecoveryRow{
				Mode: mode, KillStep: killAt, Elapsed: rep.Elapsed,
				ExecutedSteps: executed, ReExecSteps: executed - ideal,
				Restarts: rep.Restarts, Replays: rep.Replays,
			})
		}
		if reexec[1] >= reexec[0] {
			return nil, fmt.Errorf("ablation-recovery kill=%d: localized replay re-executed %d steps, global rollback %d — replay must be strictly cheaper",
				killAt, reexec[1], reexec[0])
		}
	}
	return rows, nil
}

// RenderRecovery prints the ablation-recovery rows, paper-table style.
func RenderRecovery(w io.Writer, s Scale, rows []RecoveryRow) {
	steps := 16 * s.Factor
	fmt.Fprintf(w, "Ablation — localized replay vs. global rollback (ring, 4 ranks, rank 1 unreplicated, %d steps, ckpt every 4)\n", steps)
	fmt.Fprintf(w, "%-10s %10s %12s %12s %10s %10s\n", "mode", "kill step", "time (s)", "re-exec", "restarts", "replays")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %10d %12.3f %12d %10d %10d\n",
			r.Mode, r.KillStep, r.Elapsed.Seconds(), r.ReExecSteps, r.Restarts, r.Replays)
	}
}
