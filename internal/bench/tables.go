package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/mpi"
)

// Workload names a parameterized application run.
type Workload struct {
	Name  string
	Ranks int
	Run   func(c *mpi.Comm) apps.Result
}

// Scale tunes workload sizes: 1 is the test-friendly default; larger
// values approach the paper's class-D feel (at goroutine-simulation
// scale).
type Scale struct {
	// Ranks is the logical rank count (the paper used 256 on 64 nodes).
	Ranks int
	// Factor multiplies iteration counts / sizes.
	Factor int
}

// DefaultScale is sized so the full table reproduces in seconds.
func DefaultScale() Scale { return Scale{Ranks: 8, Factor: 1} }

// NASWorkloads returns the five Table 1 benchmarks at the given scale.
// Work values are simulated per-kernel compute times in microseconds,
// tuned so each benchmark's communication/compute ratio mirrors its NAS
// character (CG the most reduction-bound, BT the most compute-heavy).
func NASWorkloads(s Scale) []Workload {
	f := s.Factor
	return []Workload{
		{"BT", s.Ranks, func(c *mpi.Comm) apps.Result {
			p := apps.BTParams(f)
			p.Work = 2500
			return apps.ADI(c, p)
		}},
		{"CG", s.Ranks, func(c *mpi.Comm) apps.Result {
			return apps.CG(c, apps.CGParams{N: 4096 * f, Iters: 25 * f, Work: 6000})
		}},
		{"FT", s.Ranks, func(c *mpi.Comm) apps.Result {
			return apps.FT(c, apps.FTParams{BlockBytes: 16384 * f, Iters: 5 * f, Work: 30000})
		}},
		{"MG", s.Ranks, func(c *mpi.Comm) apps.Result {
			return apps.MG(c, apps.MGParams{M: 4096 * f, Levels: 4, Cycles: 4 * f, Work: 4000})
		}},
		{"SP", s.Ranks, func(c *mpi.Comm) apps.Result {
			p := apps.SPParams(f)
			p.Work = 2000
			return apps.ADI(c, p)
		}},
	}
}

// WildcardWorkloads returns the Table 2 applications (ANY_SOURCE halo
// exchanges).
func WildcardWorkloads(s Scale) []Workload {
	f := s.Factor
	return []Workload{
		{"HPCCG", s.Ranks, func(c *mpi.Comm) apps.Result {
			return apps.HPCCG(c, apps.HPCCGParams{NX: 32, NY: 32, NZ: 8 * f, Iters: 8 * f, Work: 40000})
		}},
		{"CM1", s.Ranks, func(c *mpi.Comm) apps.Result {
			return apps.CM1(c, apps.CM1Params{NX: 24, NY: 24, NZ: 12, Steps: 12 * f, Work: 10000, CFLEvery: 5})
		}},
	}
}

// Row is one table line: wall-clock native vs replicated, as in the
// paper's Tables 1 and 2.
type Row struct {
	Name        string
	Native      time.Duration
	Replicated  time.Duration
	OverheadPct float64
	NativeSum   float64 // checksums, for the transparency cross-check
	ReplSum     float64
}

// timeWorkload measures one protocol run of the workload: the reported
// duration is the in-application time between two barriers (setup
// excluded), median over reps.
func timeWorkload(w Workload, proto cluster.Protocol, reps int) (time.Duration, float64, error) {
	type outcome struct {
		D   time.Duration
		Sum float64
	}
	var durations []time.Duration
	var sum float64
	for r := 0; r < reps; r++ {
		rep := cluster.Run(cluster.Config{
			Ranks:    w.Ranks,
			Protocol: proto,
			Timeout:  5 * time.Minute,
		}, func(env *cluster.Env) (any, error) {
			c := env.World
			c.Barrier()
			start := time.Now()
			res := w.Run(c)
			c.Barrier()
			return outcome{D: time.Since(start), Sum: res.Checksum}, nil
		})
		if err := rep.FirstError(); err != nil {
			return 0, 0, fmt.Errorf("%s/%s: %w", w.Name, proto, err)
		}
		// Use the maximum over ranks of replica 0 (the slowest rank
		// bounds the wall clock, like the paper's reported durations).
		var worst time.Duration
		for _, p := range rep.Procs {
			if p.Rep != 0 || p.Crashed {
				continue
			}
			o := p.Result.(outcome)
			if o.D > worst {
				worst = o.D
			}
			sum = o.Sum
		}
		durations = append(durations, worst)
	}
	sort.Slice(durations, func(i, j int) bool { return durations[i] < durations[j] })
	return durations[len(durations)/2], sum, nil
}

// CompareTable runs every workload native and under proto, producing the
// paper-style rows.
func CompareTable(ws []Workload, proto cluster.Protocol, reps int) ([]Row, error) {
	var rows []Row
	for _, w := range ws {
		nat, natSum, err := timeWorkload(w, cluster.Native, reps)
		if err != nil {
			return nil, err
		}
		rpl, rplSum, err := timeWorkload(w, proto, reps)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{
			Name:        w.Name,
			Native:      nat,
			Replicated:  rpl,
			OverheadPct: (rpl.Seconds() - nat.Seconds()) / nat.Seconds() * 100,
			NativeSum:   natSum,
			ReplSum:     rplSum,
		})
	}
	return rows, nil
}

// RenderRows prints rows in the layout of the paper's tables.
func RenderRows(w io.Writer, title string, rows []Row) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%-8s %14s %16s %14s\n", "", "Native (sec)", "Replicated (sec)", "Overhead (%)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %14.3f %16.3f %14.2f\n",
			r.Name, r.Native.Seconds(), r.Replicated.Seconds(), r.OverheadPct)
	}
}

// VerifyRows checks the transparency invariant on every row: replicated
// checksums must equal native ones bit-for-bit.
func VerifyRows(rows []Row) error {
	for _, r := range rows {
		if r.NativeSum != r.ReplSum {
			return fmt.Errorf("bench: %s replicated checksum %v != native %v", r.Name, r.ReplSum, r.NativeSum)
		}
	}
	return nil
}
