package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/mpi"
)

// AblationRow compares protocols on one workload: wall time plus the
// message-complexity counters (§2.4's O(q·r) vs O(q·r²)).
type AblationRow struct {
	Protocol cluster.Protocol
	Elapsed  time.Duration
	AppMsgs  uint64
	AckMsgs  uint64
	CtlMsgs  uint64
	AppBytes uint64
}

// RunMirrorAblation runs the CG proxy under native, SDR (parallel) and
// mirror, reporting time and traffic (experiment abl-mirror).
func RunMirrorAblation(s Scale) ([]AblationRow, error) {
	w := Workload{"CG", s.Ranks, func(c *mpi.Comm) apps.Result {
		return apps.CG(c, apps.CGParams{N: 2048 * s.Factor, Iters: 20 * s.Factor, Work: 2})
	}}
	var rows []AblationRow
	for _, proto := range []cluster.Protocol{cluster.Native, cluster.SDR, cluster.Mirror} {
		rep := cluster.Run(cluster.Config{
			Ranks: w.Ranks, Protocol: proto, Timeout: 5 * time.Minute,
		}, func(env *cluster.Env) (any, error) {
			c := env.World
			c.Barrier()
			start := time.Now()
			w.Run(c)
			c.Barrier()
			return time.Since(start), nil
		})
		if err := rep.FirstError(); err != nil {
			return nil, fmt.Errorf("ablation %s: %w", proto, err)
		}
		var worst time.Duration
		for _, p := range rep.Procs {
			if d := p.Result.(time.Duration); d > worst {
				worst = d
			}
		}
		rows = append(rows, AblationRow{
			Protocol: proto,
			Elapsed:  worst,
			AppMsgs:  rep.Stats.AppMsgs(),
			AckMsgs:  rep.Stats.AckMsgs(),
			CtlMsgs:  rep.Stats.Msgs[6],
			AppBytes: rep.Stats.Bytes[0] + rep.Stats.Bytes[3],
		})
	}
	return rows, nil
}

// RunLeaderAblation runs the ANY_SOURCE-heavy HPCCG proxy under SDR and
// the leader baseline (experiment abl-leader): the claim is that the
// leader pays for every wildcard reception while SDR does not (§3.1,
// §4.4).
func RunLeaderAblation(s Scale) ([]AblationRow, error) {
	w := Workload{"HPCCG", s.Ranks, func(c *mpi.Comm) apps.Result {
		return apps.HPCCG(c, apps.HPCCGParams{NX: 24, NY: 24, NZ: 6 * s.Factor, Iters: 15 * s.Factor, Work: 2})
	}}
	var rows []AblationRow
	for _, proto := range []cluster.Protocol{cluster.Native, cluster.SDR, cluster.Leader} {
		rep := cluster.Run(cluster.Config{
			Ranks: w.Ranks, Protocol: proto, Timeout: 5 * time.Minute,
		}, func(env *cluster.Env) (any, error) {
			c := env.World
			c.Barrier()
			start := time.Now()
			w.Run(c)
			c.Barrier()
			return time.Since(start), nil
		})
		if err := rep.FirstError(); err != nil {
			return nil, fmt.Errorf("leader ablation %s: %w", proto, err)
		}
		var worst time.Duration
		for _, p := range rep.Procs {
			if d := p.Result.(time.Duration); d > worst {
				worst = d
			}
		}
		rows = append(rows, AblationRow{
			Protocol: proto,
			Elapsed:  worst,
			AppMsgs:  rep.Stats.AppMsgs(),
			AckMsgs:  rep.Stats.AckMsgs(),
			CtlMsgs:  rep.Stats.Msgs[6],
		})
	}
	return rows, nil
}

// RenderAblation prints ablation rows.
func RenderAblation(w io.Writer, title string, rows []AblationRow) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%-10s %12s %12s %12s %12s\n", "protocol", "time (s)", "app msgs", "acks", "ctl msgs")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %12.3f %12d %12d %12d\n",
			r.Protocol, r.Elapsed.Seconds(), r.AppMsgs, r.AckMsgs, r.CtlMsgs)
	}
}

// RunSDCDemo injects one corruption into a replicated exchange and
// reports detection (experiment sdc).
func RunSDCDemo() (detected int, err error) {
	app := func(env *cluster.Env) (any, error) {
		c := env.World
		buf := make([]byte, 64)
		for i := 0; i < 10; i++ {
			if c.Rank() == 1 {
				buf[0] = byte(i)
				c.Send(0, 0, buf)
			} else {
				c.Recv(1, 0, buf)
			}
		}
		c.Barrier()
		return nil, nil
	}
	rep := cluster.Run(cluster.Config{
		Ranks: 2, Protocol: cluster.SDR, SDC: true, Timeout: time.Minute,
		Corrupt: true, CorruptRank: 1, CorruptRep: 1, CorruptSeq: 4,
	}, app)
	if err := rep.FirstError(); err != nil {
		return 0, err
	}
	return rep.SDCDetected, nil
}
