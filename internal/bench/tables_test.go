package bench

import (
	"strings"
	"testing"

	"repro/internal/cluster"
)

func TestNASWorkloadCatalog(t *testing.T) {
	s := DefaultScale()
	nas := NASWorkloads(s)
	wantNames := []string{"BT", "CG", "FT", "MG", "SP"}
	if len(nas) != len(wantNames) {
		t.Fatalf("%d NAS workloads, want %d", len(nas), len(wantNames))
	}
	for i, w := range nas {
		if w.Name != wantNames[i] {
			t.Errorf("workload %d = %s, want %s", i, w.Name, wantNames[i])
		}
		if w.Ranks != s.Ranks {
			t.Errorf("%s: ranks %d, want %d", w.Name, w.Ranks, s.Ranks)
		}
		if w.Run == nil {
			t.Errorf("%s: nil runner", w.Name)
		}
	}
	wild := WildcardWorkloads(s)
	if len(wild) != 2 || wild[0].Name != "HPCCG" || wild[1].Name != "CM1" {
		t.Fatalf("wildcard workloads: %+v", wild)
	}
}

func TestWorkloadCatalogRunnable(t *testing.T) {
	// Every catalogued workload must execute and self-verify at a small
	// rank count (the full-size runs belong to sdrbench, not the suite).
	s := Scale{Ranks: 2, Factor: 1}
	all := append(NASWorkloads(s), WildcardWorkloads(s)...)
	all = append(all, ExtendedNASWorkloads(s)...)
	for _, w := range all {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			rep := cluster.Run(cluster.Config{Ranks: 2, Protocol: cluster.Native},
				func(env *cluster.Env) (any, error) {
					return w.Run(env.World), nil
				})
			if err := rep.FirstError(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRenderAblation(t *testing.T) {
	rows := []AblationRow{
		{Protocol: cluster.SDR, Elapsed: 1e9, AppMsgs: 100, AckMsgs: 100},
		{Protocol: cluster.Mirror, Elapsed: 2e9, AppMsgs: 200, AckMsgs: 0},
	}
	var sb strings.Builder
	RenderAblation(&sb, "test title", rows)
	out := sb.String()
	for _, want := range []string{"test title", "sdr", "mirror", "100", "200"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestPartialSweepSmall(t *testing.T) {
	rows, err := RunPartialSweep(Scale{Ranks: 4, Factor: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("empty sweep")
	}
	// The sweep must include the unreplicated and fully replicated ends,
	// with physical process counts growing with the protected fraction.
	first, last := rows[0], rows[len(rows)-1]
	if first.ReplicatedRanks != 0 {
		t.Errorf("first row protects %d ranks, want 0", first.ReplicatedRanks)
	}
	if last.ReplicatedRanks != 4 {
		t.Errorf("last row protects %d ranks, want 4", last.ReplicatedRanks)
	}
	if last.PhysicalProcs <= first.PhysicalProcs {
		t.Errorf("physical procs did not grow: %d → %d", first.PhysicalProcs, last.PhysicalProcs)
	}
	// The ablation's point: protocol traffic scales with the replicated
	// fraction. The unreplicated end pays no acks at all; the fully
	// replicated end pays more application messages and more acks than
	// any partial point.
	if first.AckMsgs != 0 {
		t.Errorf("native end sent %d acks, want 0", first.AckMsgs)
	}
	mid := rows[len(rows)/2]
	if !(first.AppMsgs < mid.AppMsgs && mid.AppMsgs < last.AppMsgs) {
		t.Errorf("app messages not increasing with replicated fraction: %d, %d, %d",
			first.AppMsgs, mid.AppMsgs, last.AppMsgs)
	}
	if mid.AckMsgs == 0 || mid.AckMsgs >= last.AckMsgs {
		t.Errorf("ack messages not increasing with replicated fraction: %d → %d", mid.AckMsgs, last.AckMsgs)
	}
	var sb strings.Builder
	RenderPartial(&sb, rows)
	if !strings.Contains(sb.String(), "partial") && !strings.Contains(sb.String(), "Partial") {
		t.Errorf("render:\n%s", sb.String())
	}
}

func TestWorkloadChecksumStability(t *testing.T) {
	// The same catalogued workload twice natively: bit-identical
	// checksums (what every overhead comparison implicitly assumes).
	w := ExtendedNASWorkloads(Scale{Ranks: 2, Factor: 1})[0] // LU
	var sums []float64
	for i := 0; i < 2; i++ {
		rep := cluster.Run(cluster.Config{Ranks: 2, Protocol: cluster.Native},
			func(env *cluster.Env) (any, error) {
				return w.Run(env.World).Checksum, nil
			})
		if err := rep.FirstError(); err != nil {
			t.Fatal(err)
		}
		sums = append(sums, rep.Procs[0].Result.(float64))
	}
	if sums[0] != sums[1] {
		t.Errorf("checksum drift: %v vs %v", sums[0], sums[1])
	}
}
