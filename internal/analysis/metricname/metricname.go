// Package metricname checks the sdr_<layer>_* metric taxonomy PR 6
// established. Registration against an obs.Registry must use:
//
//   - a compile-time constant name matching sdr_<layer>_<metric>, where
//     <layer> is the registering package's name — the coordinator's
//     RunStats folding and the CI observability smoke both key on the
//     layer segment, so a metric registered under the wrong layer
//     silently vanishes from dashboards;
//   - counter names ending in _total and gauge names not ending in
//     _total (the Prometheus convention the scrape asserts use);
//   - label names declared as a []string literal of constants at the
//     registration site, with a value literal of equal length — label
//     drift between two registrations of one family panics at runtime
//     (obs.Registry.lookup), and this check moves that to vet time.
package metricname

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the metricname check.
var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc:  "check sdr_<layer>_* metric names and label declarations at obs registration sites",
	Run:  run,
}

// registrars maps obs.Registry method names to whether they register a
// counter and whether they take (labelNames, labelValues).
var registrars = map[string]struct{ counter, labeled bool }{
	"Counter":     {counter: true},
	"CounterWith": {counter: true, labeled: true},
	"Gauge":       {},
	"GaugeWith":   {labeled: true},
}

var nameRE = regexp.MustCompile(`^sdr_[a-z][a-z0-9]*_[a-z][a-z0-9_]*$`)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			spec, ok := registrars[sel.Sel.Name]
			if !ok || !isObsRegistry(pass, sel) {
				return true
			}
			// Test scaffolding registers throwaway series under whatever
			// layer it is exercising; the taxonomy protects production
			// registrations only.
			if pass.IsTestFile(call.Pos()) {
				return true
			}
			checkRegistration(pass, call, sel.Sel.Name, spec.counter, spec.labeled)
			return true
		})
	}
	return nil
}

// isObsRegistry reports whether the selector's receiver is the Registry
// type of a package named obs (the real one or a testdata stub).
func isObsRegistry(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil && obj.Pkg().Name() == "obs"
}

func checkRegistration(pass *analysis.Pass, call *ast.CallExpr, method string, counter, labeled bool) {
	if len(call.Args) < 2 {
		return
	}
	nameArg := call.Args[0]
	name, ok := analysis.ConstString(pass.TypesInfo, nameArg)
	if !ok {
		pass.Reportf(nameArg.Pos(),
			"metric name must be a compile-time constant string, not a computed value")
		return
	}
	layer := pass.Pkg.Name()
	if !nameRE.MatchString(name) {
		pass.Reportf(nameArg.Pos(),
			"metric name %q does not match the sdr_<layer>_<metric> taxonomy", name)
	} else if !strings.HasPrefix(name, "sdr_"+layer+"_") {
		pass.Reportf(nameArg.Pos(),
			"metric name %q registered by package %s must carry its layer: want prefix %q", name, layer, "sdr_"+layer+"_")
	}
	if counter && !strings.HasSuffix(name, "_total") {
		pass.Reportf(nameArg.Pos(),
			"counter %q must end in _total (Prometheus counter convention)", name)
	}
	if !counter && strings.HasSuffix(name, "_total") {
		pass.Reportf(nameArg.Pos(),
			"gauge %q must not end in _total: _total marks counters", name)
	}

	if !labeled || len(call.Args) < 4 {
		return
	}
	names, ok := stringSliceLit(pass, call.Args[2])
	if !ok {
		pass.Reportf(call.Args[2].Pos(),
			"%s label names must be a []string literal of constants declared at the registration site", method)
		return
	}
	if len(names) == 0 {
		pass.Reportf(call.Args[2].Pos(),
			"%s with no labels: use the unlabeled registrar instead", method)
	}
	// The values may be computed (per-child registration), but when they
	// are a literal the arity must match — a mismatch panics at runtime.
	if vals, isLit := sliceLitLen(call.Args[3]); isLit && vals != len(names) {
		pass.Reportf(call.Args[3].Pos(),
			"%d label values for %d label names", vals, len(names))
	}
}

// stringSliceLit returns the constant strings of a []string composite
// literal, or ok=false if the expression is anything else.
func stringSliceLit(pass *analysis.Pass, e ast.Expr) ([]string, bool) {
	lit, ok := ast.Unparen(e).(*ast.CompositeLit)
	if !ok {
		return nil, false
	}
	var out []string
	for _, el := range lit.Elts {
		s, ok := analysis.ConstString(pass.TypesInfo, el)
		if !ok {
			return nil, false
		}
		out = append(out, s)
	}
	return out, true
}

// sliceLitLen returns the element count if e is a composite literal.
func sliceLitLen(e ast.Expr) (int, bool) {
	lit, ok := ast.Unparen(e).(*ast.CompositeLit)
	if !ok {
		return 0, false
	}
	return len(lit.Elts), true
}
