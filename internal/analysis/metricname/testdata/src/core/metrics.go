// Package core exercises the metricname diagnostics from the point of
// view of one protocol layer (the package name is the layer segment).
package core

import "obs"

var dynamicName = "sdr_core_runtime_total"

var (
	// Well-formed registrations: the negative cases.
	mGood      = obs.Default.Counter("sdr_core_app_msgs_total", "app messages sent")
	gGood      = obs.Default.Gauge("sdr_core_msglog_bytes", "sender log bytes retained")
	mGoodLabel = obs.Default.CounterWith("sdr_core_bytes_total", "bytes by direction",
		[]string{"dir"}, []string{"in"})

	mWrongLayer = obs.Default.Counter("sdr_transport_oops_total", "registered under another layer") // want `must carry its layer`

	mBadShape = obs.Default.Counter("core_messages_total", "missing the sdr_ prefix") // want `does not match the sdr_<layer>_<metric> taxonomy`

	mNoTotal = obs.Default.Counter("sdr_core_app_msgs", "counter without _total") // want `must end in _total`

	gTotal = obs.Default.Gauge("sdr_core_depth_total", "gauge with a counter suffix") // want `must not end in _total`

	mComputed = obs.Default.Counter(dynamicName, "name not a compile-time constant") // want `must be a compile-time constant`

	mVarLabels = obs.Default.CounterWith("sdr_core_acks_total", "label names from a variable",
		labelNames, []string{"x"}) // want `label names must be a \[\]string literal`

	mArity = obs.Default.CounterWith("sdr_core_drops_total", "two names, one value",
		[]string{"kind", "dir"},
		[]string{"ack"}) // want `1 label values for 2 label names`

	mEmptyLabels = obs.Default.CounterWith("sdr_core_noop_total", "empty label set",
		[]string{}, []string{}) // want `with no labels`
)

var labelNames = []string{"kind"}
