// Package obs is an analysistest stub of the real registry API: the
// analyzer matches registrar methods on a Registry type in a package
// named obs, so these signatures are all it needs.
package obs

// Counter is the monotonic metric stand-in.
type Counter struct{}

// Gauge is the up/down metric stand-in.
type Gauge struct{}

// Registry is the family table stand-in.
type Registry struct{}

func (r *Registry) Counter(name, help string) *Counter { return nil }

func (r *Registry) CounterWith(name, help string, labelNames, labelValues []string) *Counter {
	return nil
}

func (r *Registry) Gauge(name, help string) *Gauge { return nil }

func (r *Registry) GaugeWith(name, help string, labelNames, labelValues []string) *Gauge {
	return nil
}

// Default is the process-wide registry stand-in.
var Default = &Registry{}
