// Package analysistest runs an analyzer over testdata packages and
// checks its diagnostics against `// want "regexp"` comments, the same
// convention as golang.org/x/tools — reimplemented on the standard
// library so the suite carries no external dependency.
//
// Layout: testdata/src/<pkg>/*.go, GOPATH-style. A testdata package may
// import sibling testdata packages (stubs of the real API under check)
// by their bare name, or anything resolvable through the go build cache
// (standard library, this module's packages).
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// expectation is one want-regexp at one file:line, matched at most once.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads each testdata package, applies the analyzer, and reports
// any mismatch between diagnostics and want comments as test errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	srcRoot := filepath.Join(testdata, "src")
	for _, pkg := range pkgs {
		dir := filepath.Join(srcRoot, filepath.FromSlash(pkg))
		lp, err := analysis.LoadDir(dir, []string{srcRoot})
		if err != nil {
			t.Errorf("%s: load %s: %v", a.Name, pkg, err)
			continue
		}
		diags, err := analysis.RunAnalyzer(a, lp)
		if err != nil {
			t.Errorf("%s: run on %s: %v", a.Name, pkg, err)
			continue
		}
		wants, err := parseWants(lp.Fset, lp.Files)
		if err != nil {
			t.Errorf("%s: %s: %v", a.Name, pkg, err)
			continue
		}
		for _, d := range diags {
			posn := lp.Fset.Position(d.Pos)
			if !match(wants, posn.Filename, posn.Line, d.Message) {
				t.Errorf("%s: %s:%d: unexpected diagnostic: %s",
					a.Name, posn.Filename, posn.Line, d.Message)
			}
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s: %s:%d: no diagnostic matching %q",
					a.Name, w.file, w.line, w.raw)
			}
		}
	}
}

// match consumes the first unmatched expectation at (file, line) whose
// regexp matches msg.
func match(wants []*expectation, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// parseWants extracts the `// want "re" "re"...` expectations from every
// comment in the files.
func parseWants(fset *token.FileSet, files []*ast.File) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				// A want may follow another annotation on the same
				// comment: `// sdr:lockrank a < ghost // want "..."`.
				if i := strings.Index(text, "// want "); i >= 0 {
					text = strings.TrimSpace(text[i+2:])
				}
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				posn := fset.Position(c.Pos())
				patterns, err := splitQuoted(strings.TrimPrefix(text, "want "))
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want comment: %v", posn.Filename, posn.Line, err)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", posn.Filename, posn.Line, p, err)
					}
					wants = append(wants, &expectation{
						file: posn.Filename, line: posn.Line, re: re, raw: p,
					})
				}
			}
		}
	}
	return wants, nil
}

// splitQuoted parses a sequence of Go string literals ("..." or `...`)
// separated by spaces.
func splitQuoted(s string) ([]string, error) {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		var lit string
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated raw string in %q", s)
			}
			lit, s = s[:end+2], s[end+2:]
		case '"':
			i := 1
			for ; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					break
				}
			}
			if i >= len(s) {
				return nil, fmt.Errorf("unterminated string in %q", s)
			}
			lit, s = s[:i+1], s[i+1:]
		default:
			return nil, fmt.Errorf("expected quoted regexp, got %q", s)
		}
		u, err := strconv.Unquote(lit)
		if err != nil {
			return nil, fmt.Errorf("unquote %s: %v", lit, err)
		}
		out = append(out, u)
	}
}
