// Package analysis is an in-tree, stdlib-only reimplementation of the
// golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass, Diagnostic)
// plus a unitchecker-compatible driver, built so the repository's custom
// invariant checkers can run as `go vet -vettool=sdrlint` without any
// external dependency.
//
// # Why these analyzers exist
//
// Each analyzer in the subdirectories encodes an invariant that was, at
// some point, only written down in a comment or a reviewer's head — and
// each has a concrete bug behind it:
//
//   - poolhandoff: every transport.GetBuf/GetMessage acquisition must
//     reach exactly one release (FreeBuf/FreeMessage) or ownership
//     handoff (SetPooledData, a send, a return) on every path. The
//     motivating bugs: the earlyAcks pool leak fixed in PR 4, where an
//     early return skipped FreeMessage and slowly drained the buffer
//     pool under failure churn, and its dual — a conditional double
//     FreeBuf that poisoned the pool with an aliased buffer.
//
//   - codecsym: exported EncodeX/DecodeX pairs must both exist in the
//     same package, decoders must return an error as their last result
//     (fail closed, never guess), and a make() sized from wire input
//     must sit behind a length bound check. Motivated by the PR 5 wire
//     codecs: the sequencer pinned-slot and replay-state bugs both came
//     from a decoder quietly accepting frames the encoder had stopped
//     producing, and a corrupt count field must not drive a
//     multi-gigabyte allocation before validation.
//
//   - metricname: obs.Registry registrations must be compile-time
//     constant names matching the sdr_<layer>_<metric> taxonomy PR 6
//     introduced, carry the registering package as the layer segment,
//     use the _total suffix for counters (and not for gauges), and
//     declare label names as a literal of constants at the registration
//     site. Dashboards and the RunStats scraper key on these names; a
//     misspelled layer silently falls off every graph.
//
//   - envcontract: every read of an SDR_* environment variable must go
//     through the typed accessor table in internal/cluster/env.go
//     (cluster.EnvString/EnvInt/EnvFlag/...). PRs 3–5 each grew the
//     launcher/worker contract through stray os.Getenv calls scattered
//     across cluster and cmd/sdrun, leaving variables undocumented and
//     unvalidated; the table is now the single declaration point and
//     rawEnv panics on undeclared names.
//
// The PR 8 batched wire landed with three shutdown races (a flush/Close
// deadlock through the batch and connection locks, writes against an
// unmapped ring, and orphaned accept loops) that each took a -race CI
// flake to find. The concurrency analyzers turn that class of bug into
// a compile-time report:
//
//   - lockorder: mutex fields carry declared ranks; acquisitions while
//     another ranked mutex is held must follow a declared edge of the
//     partial order. Undeclared nestings, inversions, re-acquisition,
//     same-rank nesting and cyclic declarations are all reported, and
//     one-level call summaries catch nestings through helpers. Rank
//     declarations export as facts, so cross-package nestings are
//     checked too.
//
//   - holdblock: no blocking operation — network I/O, time.Sleep, JSON
//     stream Encode/Decode, bare channel operations, selects without an
//     escape arm, Cond.Wait outside a loop, WaitGroup.Wait — while a
//     ranked mutex is held. Deliberate hold-across-write points (the
//     per-pair FIFO flushes) carry an explicit sdr:holdblock-ok waiver
//     with a reason.
//
//   - golifecycle: every goroutine launched from a type that has a
//     Close/Stop/Shutdown must be joinable by it: the body receives on
//     a done/ctx signal, or registers on a WaitGroup the closer waits
//     on (Add before the go statement, Done in the body). There is no
//     waiver comment by design — an unjoinable goroutine on a
//     long-lived type is always a leak. Running this analyzer over the
//     tree found four real leaks (the registry's accept/serve/rejoin
//     goroutines and the obs server's accept loop), fixed in the same
//     change that introduced it.
//
//   - atomicfield: a field accessed through legacy sync/atomic calls
//     anywhere must be accessed atomically everywhere, and a field
//     annotated "guarded by <mu>" may only be touched with that mutex
//     held (intra-procedurally). Functions with the *Locked suffix,
//     freshly allocated locals, and _test.go files are exempt.
//
// # Annotation grammar
//
// The concurrency analyzers read three comment forms, all attached to
// struct fields or statements:
//
//	mu sync.Mutex // sdr:lockrank batch < ringio < peer
//
// names the field's rank (the first identifier) and declares ordering
// edges between consecutive pairs. Multiple sdr:lockrank lines on one
// field may repeat the field's own rank to declare further edges.
//
//	frames []*Message // guarded by mu
//
// declares that the field may only be accessed while the named sibling
// mutex is held (enforced by atomicfield).
//
//	// sdr:holdblock-ok <reason>
//
// on the blocking line or the line above waives a holdblock finding;
// the reason is mandatory and should say why holding the lock across
// the blocking point is load-bearing.
//
// # Running locally
//
// The suite builds into cmd/sdrlint and speaks the vet vettool
// protocol, so it composes with the build cache and vet's package
// loader:
//
//	go build -o sdrlint ./cmd/sdrlint
//	go vet -vettool=./sdrlint ./...
//
// or, letting the tool re-exec vet itself:
//
//	go run ./cmd/sdrlint ./...
//
// CI runs the same two commands as a blocking step; a diagnostic from
// any analyzer fails the build. The analyzers match target packages by
// package name (transport, obs, cluster), so their analysistest suites
// exercise the same code paths against small testdata stubs.
//
// # Driver notes
//
// unitchecker.go implements the contract `go vet -vettool` expects of a
// tool: the -V=full version fingerprint, the -flags listing, and the
// per-package .cfg invocation, resolving imports from the build cache's
// export data via go/importer. analysistest/ is the matching test
// harness: it loads a testdata/src/<pkg> tree, runs one analyzer, and
// checks diagnostics against `// want "regexp"` comments.
package analysis
