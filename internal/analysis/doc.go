// Package analysis is an in-tree, stdlib-only reimplementation of the
// golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass, Diagnostic)
// plus a unitchecker-compatible driver, built so the repository's custom
// invariant checkers can run as `go vet -vettool=sdrlint` without any
// external dependency.
//
// # Why these analyzers exist
//
// Each analyzer in the subdirectories encodes an invariant that was, at
// some point, only written down in a comment or a reviewer's head — and
// each has a concrete bug behind it:
//
//   - poolhandoff: every transport.GetBuf/GetMessage acquisition must
//     reach exactly one release (FreeBuf/FreeMessage) or ownership
//     handoff (SetPooledData, a send, a return) on every path. The
//     motivating bugs: the earlyAcks pool leak fixed in PR 4, where an
//     early return skipped FreeMessage and slowly drained the buffer
//     pool under failure churn, and its dual — a conditional double
//     FreeBuf that poisoned the pool with an aliased buffer.
//
//   - codecsym: exported EncodeX/DecodeX pairs must both exist in the
//     same package, decoders must return an error as their last result
//     (fail closed, never guess), and a make() sized from wire input
//     must sit behind a length bound check. Motivated by the PR 5 wire
//     codecs: the sequencer pinned-slot and replay-state bugs both came
//     from a decoder quietly accepting frames the encoder had stopped
//     producing, and a corrupt count field must not drive a
//     multi-gigabyte allocation before validation.
//
//   - metricname: obs.Registry registrations must be compile-time
//     constant names matching the sdr_<layer>_<metric> taxonomy PR 6
//     introduced, carry the registering package as the layer segment,
//     use the _total suffix for counters (and not for gauges), and
//     declare label names as a literal of constants at the registration
//     site. Dashboards and the RunStats scraper key on these names; a
//     misspelled layer silently falls off every graph.
//
//   - envcontract: every read of an SDR_* environment variable must go
//     through the typed accessor table in internal/cluster/env.go
//     (cluster.EnvString/EnvInt/EnvFlag/...). PRs 3–5 each grew the
//     launcher/worker contract through stray os.Getenv calls scattered
//     across cluster and cmd/sdrun, leaving variables undocumented and
//     unvalidated; the table is now the single declaration point and
//     rawEnv panics on undeclared names.
//
// # Running locally
//
// The suite builds into cmd/sdrlint and speaks the vet vettool
// protocol, so it composes with the build cache and vet's package
// loader:
//
//	go build -o sdrlint ./cmd/sdrlint
//	go vet -vettool=./sdrlint ./...
//
// or, letting the tool re-exec vet itself:
//
//	go run ./cmd/sdrlint ./...
//
// CI runs the same two commands as a blocking step; a diagnostic from
// any analyzer fails the build. The analyzers match target packages by
// package name (transport, obs, cluster), so their analysistest suites
// exercise the same code paths against small testdata stubs.
//
// # Driver notes
//
// unitchecker.go implements the contract `go vet -vettool` expects of a
// tool: the -V=full version fingerprint, the -flags listing, and the
// per-package .cfg invocation, resolving imports from the build cache's
// export data via go/importer. analysistest/ is the matching test
// harness: it loads a testdata/src/<pkg> tree, runs one analyzer, and
// checks diagnostics against `// want "regexp"` comments.
package analysis
