package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file generalizes the per-function path walking poolhandoff
// introduced: a source-order walk of a function body that tracks which
// tracked mutexes are held on the current path. Branches are walked with
// a copy of the held set and merged by intersection (a lock is "held"
// after a branch only if every non-terminating arm still holds it);
// loop bodies are walked once; function literals are walked separately
// with an empty held set (they run on their own goroutine or call path).

// LockUse identifies one acquisition or release of a tracked mutex
// field: the field object (rank identity) plus the printed receiver path
// (instance identity — "pw.mu" and "b.mu" are different locks even if
// the fields coincide).
type LockUse struct {
	Field *types.Var
	Path  string
	Read  bool // RLock/RUnlock
	Pos   token.Pos
}

// LockWalker drives the walk. Tracked selects the mutex fields to
// follow; OnAcquire fires at each tracked Lock/RLock with the locks
// already held; OnNode fires for every scanned expression and statement
// of interest (calls, receives, sends, selects, selectors, range) with
// the current held set. inSelectComm marks nodes inside a select comm
// clause header, whose receive/send is the select's to judge, not a bare
// blocking op.
type LockWalker struct {
	Info      *types.Info
	Tracked   func(*types.Var) bool
	OnAcquire func(acq LockUse, held []LockUse)
	OnNode    func(n ast.Node, held []LockUse, inSelectComm bool)

	queue []*ast.BlockStmt
}

// Walk traverses body, then every function literal encountered (each
// with an empty held set).
func (w *LockWalker) Walk(body *ast.BlockStmt) {
	w.queue = append(w.queue[:0], body)
	for len(w.queue) > 0 {
		b := w.queue[0]
		w.queue = w.queue[1:]
		w.stmts(b.List, nil)
	}
}

func cloneHeld(h []LockUse) []LockUse { return append([]LockUse(nil), h...) }

// stmts walks a statement list; the bool result reports path termination
// (return, branch, or a select/switch whose every arm terminates).
func (w *LockWalker) stmts(list []ast.Stmt, held []LockUse) ([]LockUse, bool) {
	for _, s := range list {
		var term bool
		held, term = w.stmt(s, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (w *LockWalker) stmt(s ast.Stmt, held []LockUse) ([]LockUse, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if use, kind := w.lockCall(call); kind != 0 {
				if kind > 0 {
					if w.OnAcquire != nil {
						w.OnAcquire(use, held)
					}
					held = append(cloneHeld(held), use)
				} else {
					held = releaseLock(held, use)
				}
				return held, false
			}
		}
		w.scan(s.X, held, false)
		return held, false

	case *ast.DeferStmt:
		if _, kind := w.lockCall(s.Call); kind != 0 {
			// Deferred unlock: the lock stays held to the end of the
			// function, which is exactly what the held set already says.
			return held, false
		}
		w.scan(s.Call, held, false)
		return held, false

	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.scan(r, held, false)
		}
		return held, true

	case *ast.BranchStmt:
		return held, true

	case *ast.BlockStmt:
		return w.stmts(s.List, held)

	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)

	case *ast.IfStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		w.scan(s.Cond, held, false)
		var outs [][]LockUse
		if bh, bt := w.stmts(s.Body.List, cloneHeld(held)); !bt {
			outs = append(outs, bh)
		}
		if s.Else != nil {
			if eh, et := w.stmt(s.Else, cloneHeld(held)); !et {
				outs = append(outs, eh)
			}
		} else {
			outs = append(outs, held)
		}
		if len(outs) == 0 {
			return held, true
		}
		return intersectHeld(outs), false

	case *ast.ForStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.scan(s.Cond, held, false)
		}
		w.stmts(s.Body.List, cloneHeld(held))
		if s.Post != nil {
			w.stmt(s.Post, cloneHeld(held))
		}
		return held, false

	case *ast.RangeStmt:
		if w.OnNode != nil {
			w.OnNode(s, held, false)
		}
		w.scan(s.X, held, false)
		w.stmts(s.Body.List, cloneHeld(held))
		return held, false

	case *ast.SwitchStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.scan(s.Tag, held, false)
		}
		return w.caseArms(s.Body, held)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		w.scan(s.Assign, held, false)
		return w.caseArms(s.Body, held)

	case *ast.SelectStmt:
		if w.OnNode != nil {
			w.OnNode(s, held, false)
		}
		var outs [][]LockUse
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			h := cloneHeld(held)
			if cc.Comm != nil {
				w.scan(cc.Comm, h, true)
			}
			if hh, t := w.stmts(cc.Body, h); !t {
				outs = append(outs, hh)
			}
		}
		if len(outs) == 0 {
			return held, len(s.Body.List) > 0
		}
		return intersectHeld(outs), false

	case *ast.GoStmt:
		if w.OnNode != nil {
			w.OnNode(s, held, false)
		}
		// The spawned call runs on its own goroutine, so it does not nest
		// under the caller's locks: only the synchronously-evaluated
		// arguments are scanned, and a literal body is queued for its own
		// empty-held walk.
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.queue = append(w.queue, fl.Body)
		}
		for _, a := range s.Call.Args {
			w.scan(a, held, false)
		}
		return held, false

	case *ast.SendStmt:
		if w.OnNode != nil {
			w.OnNode(s, held, false)
		}
		w.scan(s.Chan, held, false)
		w.scan(s.Value, held, false)
		return held, false

	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.scan(e, held, false)
		}
		for _, e := range s.Lhs {
			w.scan(e, held, false)
		}
		return held, false

	default:
		w.scan(s, held, false)
		return held, false
	}
}

// caseArms merges a switch body's clause exits; a switch without a
// default can match nothing, so the entry state joins the merge.
func (w *LockWalker) caseArms(body *ast.BlockStmt, held []LockUse) ([]LockUse, bool) {
	var outs [][]LockUse
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			w.scan(e, held, false)
		}
		if hh, t := w.stmts(cc.Body, cloneHeld(held)); !t {
			outs = append(outs, hh)
		}
	}
	if !hasDefault {
		outs = append(outs, held)
	}
	if len(outs) == 0 {
		return held, true
	}
	return intersectHeld(outs), false
}

// scan inspects an expression (or simple statement) subtree, reporting
// interesting nodes to OnNode. Function literals are queued for their
// own empty-held walk.
func (w *LockWalker) scan(n ast.Node, held []LockUse, inComm bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.FuncLit:
			w.queue = append(w.queue, c.Body)
			return false
		case *ast.CallExpr, *ast.UnaryExpr, *ast.SelectorExpr, *ast.SendStmt:
			if w.OnNode != nil {
				w.OnNode(c, held, inComm)
			}
		}
		return true
	})
}

// lockCall classifies a call as a tracked mutex acquisition (+1) or
// release (-1); 0 for anything else.
func (w *LockWalker) lockCall(call *ast.CallExpr) (LockUse, int) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return LockUse{}, 0
	}
	var kind int
	read := false
	switch sel.Sel.Name {
	case "Lock":
		kind = 1
	case "RLock":
		kind, read = 1, true
	case "Unlock":
		kind = -1
	case "RUnlock":
		kind, read = -1, true
	default:
		return LockUse{}, 0
	}
	fn, _ := w.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return LockUse{}, 0
	}
	fv := FieldVar(w.Info, sel.X)
	if fv == nil || (w.Tracked != nil && !w.Tracked(fv)) {
		return LockUse{}, 0
	}
	return LockUse{Field: fv, Path: types.ExprString(sel.X), Read: read, Pos: call.Pos()}, kind
}

// FieldVar resolves an expression to the struct field it selects, or nil
// (locals, package-level vars, methods).
func FieldVar(info *types.Info, e ast.Expr) *types.Var {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s, ok := info.Selections[sel]; ok {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
		return nil
	}
	if v, ok := info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

func releaseLock(held []LockUse, use LockUse) []LockUse {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].Field == use.Field && held[i].Path == use.Path {
			out := cloneHeld(held[:i])
			return append(out, held[i+1:]...)
		}
	}
	return held
}

// intersectHeld keeps the locks held on every merged path.
func intersectHeld(outs [][]LockUse) []LockUse {
	var merged []LockUse
	for _, u := range outs[0] {
		onAll := true
		for _, other := range outs[1:] {
			found := false
			for _, v := range other {
				if v.Field == u.Field && v.Path == u.Path {
					found = true
					break
				}
			}
			if !found {
				onAll = false
				break
			}
		}
		if onAll {
			merged = append(merged, u)
		}
	}
	return merged
}

// FuncAcquires computes, for every function declared in the package, the
// tracked mutexes the function — or, transitively, any same-package
// function it calls — may acquire while its caller waits. Goroutine
// bodies and function literals are excluded: their acquisitions do not
// nest under the caller's locks. lockorder uses the summaries to catch
// inversions hidden one or more calls deep (Deliver holding the batch
// mutex while flushBatchLocked dials through the wire mutex).
func FuncAcquires(pass *Pass, tracked func(*types.Var) bool) map[*types.Func]map[*types.Var]token.Pos {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	direct := map[*types.Func]map[*types.Var]token.Pos{}
	callees := map[*types.Func][]*types.Func{}
	w := &LockWalker{Info: pass.TypesInfo, Tracked: tracked}
	for fn, fd := range decls {
		acq := map[*types.Var]token.Pos{}
		var calls []*types.Func
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit, *ast.GoStmt:
				return false
			case *ast.CallExpr:
				if use, kind := w.lockCall(n); kind > 0 {
					if _, ok := acq[use.Field]; !ok {
						acq[use.Field] = use.Pos
					}
					return false
				}
				if callee := FuncOf(pass.TypesInfo, n); callee != nil {
					if _, ok := decls[callee]; ok {
						calls = append(calls, callee)
					}
				}
			}
			return true
		})
		direct[fn] = acq
		callees[fn] = calls
	}
	// Propagate to a fixed point (the call graph is small and cycles are
	// rare; each round only adds fields).
	for changed := true; changed; {
		changed = false
		for fn, calls := range callees {
			for _, callee := range calls {
				for v, pos := range direct[callee] {
					if _, ok := direct[fn][v]; !ok {
						direct[fn][v] = pos
						changed = true
					}
				}
			}
		}
	}
	return direct
}
