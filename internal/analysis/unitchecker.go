package analysis

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"go/version"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// This file implements the `go vet -vettool` protocol, so the sdrlint
// binary plugs into the go command's build-and-cache machinery exactly
// like the standard vet analyzers:
//
//	-V=full     print a version fingerprint for the build cache
//	-flags      describe supported flags (JSON)
//	-json       emit diagnostics as JSON on stdout (exit 0) instead of
//	            text on stderr (exit 2)
//	foo.cfg     analyze the single compilation unit described by the
//	            JSON config the go command wrote
//
// Invoked any other way, Main re-execs `go vet -vettool=<self>` with the
// given package patterns, so `sdrlint ./...` works directly.
//
// Facts: analyzers with an ExportFacts hook write their per-package fact
// blob into the unit's vetx output file; the go command schedules
// VetxOnly runs over dependencies and hands their vetx files back via
// PackageVetx, from which the importing unit's ImportedFacts are read.
// The format is one magic line plus a JSON object mapping analyzer name
// to blob.

// vetConfig mirrors the JSON the go command writes for each unit. Only
// the fields this driver consumes are declared; unknown fields are
// ignored by encoding/json.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point of a vettool built from the given analyzers.
// It never returns: process exit codes follow vet convention (0 clean,
// 1 driver failure, 2 diagnostics reported; in -json mode diagnostics
// go to stdout and the exit code stays 0).
func Main(analyzers ...*Analyzer) {
	progname := filepath.Base(os.Args[0])
	jsonOut := false
	var args []string
	for _, a := range os.Args[1:] {
		switch a {
		case "-json", "-json=true", "--json", "--json=true":
			jsonOut = true
		case "-json=false", "--json=false":
		default:
			args = append(args, a)
		}
	}
	switch {
	case len(args) == 1 && args[0] == "-V=full":
		// The go command hashes this line into the action cache key, so
		// it must change whenever the analyzers do: fingerprint the
		// executable itself.
		fmt.Printf("%s version devel comments-go-here buildID=%s\n", progname, selfHash())
		os.Exit(0)
	case len(args) == 1 && args[0] == "-flags":
		fmt.Println(`[{"Name":"json","Bool":true,"Usage":"emit JSON diagnostics on stdout instead of text on stderr"}]`)
		os.Exit(0)
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		code, err := runUnit(args[0], analyzers, jsonOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			os.Exit(1)
		}
		os.Exit(code)
	default:
		// Convenience mode: behave like `go vet` over package patterns.
		if len(args) == 0 {
			args = []string{"./..."}
		}
		self, err := os.Executable()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			os.Exit(1)
		}
		vetArgs := []string{"vet", "-vettool=" + self}
		if jsonOut {
			vetArgs = append(vetArgs, "-json")
		}
		cmd := exec.Command("go", append(vetArgs, args...)...)
		cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
		if err := cmd.Run(); err != nil {
			if ee, ok := err.(*exec.ExitError); ok {
				os.Exit(ee.ExitCode())
			}
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
}

// selfHash fingerprints the running executable for -V=full.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%02x", h.Sum(nil))
}

// runUnit analyzes one compilation unit. Returns the process exit code.
func runUnit(cfgFile string, analyzers []*Analyzer, jsonOut bool) (int, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return 0, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parse %s: %w", cfgFile, err)
	}
	needFacts := false
	for _, a := range analyzers {
		if a.ExportFacts != nil {
			needFacts = true
		}
	}
	// Fact-gathering runs over dependencies: skip the expensive
	// parse+typecheck when no analyzer exports facts, and always for
	// standard-library units — no sdr:* annotation lives there.
	if cfg.VetxOnly && (!needFacts || stdlibUnit(&cfg)) {
		return 0, writeVetx(cfg.VetxOutput, nil)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure || cfg.VetxOnly {
				return 0, writeVetx(cfg.VetxOutput, nil)
			}
			return 0, err
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tconf := &types.Config{Importer: imp}
	if cfg.GoVersion != "" {
		tconf.GoVersion = version.Lang(cfg.GoVersion)
	}
	info := NewTypesInfo()
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure || cfg.VetxOnly {
			return 0, writeVetx(cfg.VetxOutput, nil)
		}
		return 0, fmt.Errorf("typecheck %s: %w", cfg.ImportPath, err)
	}

	lp := &Loaded{Fset: fset, Files: files, Pkg: pkg, Info: info}
	lp.Facts = readImportedFacts(&cfg)

	if cfg.VetxOnly {
		return 0, writeUnitFacts(&cfg, analyzers, lp)
	}

	exit := 0
	jsonDiags := map[string][]jsonDiagnostic{}
	for _, a := range analyzers {
		diags, err := RunAnalyzer(a, lp)
		if err != nil {
			return 0, err
		}
		for _, d := range diags {
			if jsonOut {
				jsonDiags[a.Name] = append(jsonDiags[a.Name], jsonDiagnostic{
					Posn:    fset.Position(d.Pos).String(),
					Message: d.Message,
				})
				continue
			}
			fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, a.Name)
			exit = 2
		}
	}
	if jsonOut && len(jsonDiags) > 0 {
		// The x/tools unitchecker shape: one object per unit keyed by
		// import path, diagnostics grouped per analyzer, exit 0 so the
		// go command keeps collecting units.
		out, _ := json.MarshalIndent(map[string]map[string][]jsonDiagnostic{
			cfg.ImportPath: jsonDiags,
		}, "", "\t")
		fmt.Fprintf(os.Stdout, "%s\n", out)
	}
	return exit, writeUnitFacts(&cfg, analyzers, lp)
}

// jsonDiagnostic is one -json finding, mirroring x/tools unitchecker.
type jsonDiagnostic struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

// stdlibUnit reports whether the unit's sources live under GOROOT.
func stdlibUnit(cfg *vetConfig) bool {
	if len(cfg.GoFiles) == 0 {
		return false
	}
	goroot := build.Default.GOROOT
	if goroot == "" {
		return false
	}
	rel, err := filepath.Rel(goroot, cfg.GoFiles[0])
	return err == nil && !strings.HasPrefix(rel, "..")
}

// readImportedFacts loads the dependency vetx files the go command
// scheduled for this unit: analyzer name → import path → blob. Missing
// or old-format files contribute nothing (tolerant by design: a stale
// cache entry must not fail the build).
func readImportedFacts(cfg *vetConfig) map[string]map[string][]byte {
	if len(cfg.PackageVetx) == 0 {
		return nil
	}
	out := map[string]map[string][]byte{}
	for path, file := range cfg.PackageVetx {
		for aname, blob := range readVetx(file) {
			am := out[aname]
			if am == nil {
				am = map[string][]byte{}
				out[aname] = am
			}
			am[path] = blob
			if mapped, ok := cfg.ImportMap[path]; ok && mapped != path {
				am[mapped] = blob
			}
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// writeUnitFacts runs the fact exporters and writes the unit's vetx.
func writeUnitFacts(cfg *vetConfig, analyzers []*Analyzer, lp *Loaded) error {
	var facts map[string]json.RawMessage
	for _, a := range analyzers {
		blob, err := ExportFactsFor(a, lp)
		if err != nil || blob == nil {
			continue // a fact failure degrades to factless, not a build break
		}
		if facts == nil {
			facts = map[string]json.RawMessage{}
		}
		facts[a.Name] = blob
	}
	return writeVetx(cfg.VetxOutput, facts)
}

const vetxMagic = "sdrlint.facts/2\n"

// writeVetx writes the unit's facts file: the magic line plus a JSON
// object mapping analyzer name to blob (empty object when factless).
func writeVetx(path string, facts map[string]json.RawMessage) error {
	if path == "" {
		return nil
	}
	buf := bytes.NewBufferString(vetxMagic)
	if len(facts) == 0 {
		buf.WriteString("{}\n")
	} else if err := json.NewEncoder(buf).Encode(facts); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o666)
}

// readVetx parses one vetx file; nil on any mismatch (v1 files, foreign
// tools, truncation).
func readVetx(path string) map[string]json.RawMessage {
	data, err := os.ReadFile(path)
	if err != nil || !bytes.HasPrefix(data, []byte(vetxMagic)) {
		return nil
	}
	var facts map[string]json.RawMessage
	if json.Unmarshal(data[len(vetxMagic):], &facts) != nil {
		return nil
	}
	return facts
}
