package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"go/version"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// This file implements the `go vet -vettool` protocol, so the sdrlint
// binary plugs into the go command's build-and-cache machinery exactly
// like the standard vet analyzers:
//
//	-V=full     print a version fingerprint for the build cache
//	-flags      describe supported flags (JSON)
//	foo.cfg     analyze the single compilation unit described by the
//	            JSON config the go command wrote
//
// Invoked any other way, Main re-execs `go vet -vettool=<self>` with the
// given package patterns, so `sdrlint ./...` works directly.

// vetConfig mirrors the JSON the go command writes for each unit. Only
// the fields this driver consumes are declared; unknown fields are
// ignored by encoding/json.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point of a vettool built from the given analyzers.
// It never returns: process exit codes follow vet convention (0 clean,
// 1 driver failure, 2 diagnostics reported).
func Main(analyzers ...*Analyzer) {
	progname := filepath.Base(os.Args[0])
	args := os.Args[1:]
	switch {
	case len(args) == 1 && args[0] == "-V=full":
		// The go command hashes this line into the action cache key, so
		// it must change whenever the analyzers do: fingerprint the
		// executable itself.
		fmt.Printf("%s version devel comments-go-here buildID=%s\n", progname, selfHash())
		os.Exit(0)
	case len(args) == 1 && args[0] == "-flags":
		fmt.Println("[]")
		os.Exit(0)
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		code, err := runUnit(args[0], analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			os.Exit(1)
		}
		os.Exit(code)
	default:
		// Convenience mode: behave like `go vet` over package patterns.
		if len(args) == 0 {
			args = []string{"./..."}
		}
		self, err := os.Executable()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			os.Exit(1)
		}
		cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
		cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
		if err := cmd.Run(); err != nil {
			if ee, ok := err.(*exec.ExitError); ok {
				os.Exit(ee.ExitCode())
			}
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
}

// selfHash fingerprints the running executable for -V=full.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%02x", h.Sum(nil))
}

// runUnit analyzes one compilation unit. Returns the process exit code.
func runUnit(cfgFile string, analyzers []*Analyzer) (int, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return 0, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parse %s: %w", cfgFile, err)
	}
	// The go command may schedule fact-gathering runs over dependencies;
	// these analyzers are factless, so the unit's output file is written
	// empty and analysis is skipped.
	if cfg.VetxOnly {
		return 0, writeVetx(cfg.VetxOutput)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, writeVetx(cfg.VetxOutput)
			}
			return 0, err
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tconf := &types.Config{Importer: imp}
	if cfg.GoVersion != "" {
		tconf.GoVersion = version.Lang(cfg.GoVersion)
	}
	info := NewTypesInfo()
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, writeVetx(cfg.VetxOutput)
		}
		return 0, fmt.Errorf("typecheck %s: %w", cfg.ImportPath, err)
	}

	lp := &Loaded{Fset: fset, Files: files, Pkg: pkg, Info: info}
	exit := 0
	for _, a := range analyzers {
		diags, err := RunAnalyzer(a, lp)
		if err != nil {
			return 0, err
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, a.Name)
			exit = 2
		}
	}
	return exit, writeVetx(cfg.VetxOutput)
}

// writeVetx satisfies the go command's expectation that each unit
// produces a facts file (ours are always empty).
func writeVetx(path string) error {
	if path == "" {
		return nil
	}
	return os.WriteFile(path, []byte("sdrlint.facts/1\n"), 0o666)
}
