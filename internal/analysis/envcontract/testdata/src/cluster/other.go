package cluster

import "os"

// Even inside package cluster, only env.go may touch the raw contract.
func strayInPackage() string {
	return os.Getenv("SDR_DIST_RANKS") // want `read of SDR_DIST_RANKS outside the cluster env table`
}
