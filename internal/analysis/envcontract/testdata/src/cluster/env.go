// Package cluster stubs the env-table layout: this file (cluster/env.go)
// is the single place allowed to read SDR_* variables directly.
package cluster

import "os"

// EnvProc mirrors one contract variable.
const EnvProc = "SDR_DIST_PROC"

// EnvString is the stub typed accessor: direct reads here are the
// negative case — the table file itself must not be flagged.
func EnvString(name string) string {
	return os.Getenv(name)
}

func tableRead() string {
	return os.Getenv("SDR_DIST_PROC")
}

func tableLookup() (string, bool) {
	return os.LookupEnv(EnvProc)
}
