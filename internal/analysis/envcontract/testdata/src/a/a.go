// Package a exercises the envcontract diagnostics from outside the
// cluster package.
package a

import (
	"os"

	"cluster"
)

const worker = "SDR_DIST_WORKER"

func direct() string {
	return os.Getenv("SDR_DIST_APP") // want `read of SDR_DIST_APP outside the cluster env table`
}

func throughConst() string {
	// The name resolves through a constant: still the raw contract.
	return os.Getenv(worker) // want `read of SDR_DIST_WORKER outside the cluster env table`
}

func lookup() (string, bool) {
	return os.LookupEnv(cluster.EnvProc) // want `read of SDR_DIST_PROC outside the cluster env table`
}

// Negative cases: non-contract variables and the typed accessor.
func unrelated() string {
	return os.Getenv("HOME")
}

func viaAccessor() string {
	return cluster.EnvString(cluster.EnvProc)
}
