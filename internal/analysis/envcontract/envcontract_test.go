package envcontract_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/envcontract"
)

func TestEnvContract(t *testing.T) {
	analysistest.Run(t, "testdata", envcontract.Analyzer, "cluster", "a")
}
