// Package envcontract checks that every read of an SDR_* environment
// variable goes through the typed accessor table in
// internal/cluster/env.go. The SDR_DIST_* contract is how the
// coordinator, the relaunch paths, and the hidden worker mode agree on
// a world — PRs 3 through 5 each grew it, and each stray os.Getenv was
// a place the contract could drift undocumented and unvalidated. With
// this check the table is the contract: one file declares every
// variable, its type, and its documentation, and everything else calls
// the typed accessors.
//
// Exemptions: the table file itself (package cluster, env.go) is the
// single place allowed to touch os.Getenv for SDR_* names, and _test.go
// files may manipulate the raw environment to stage worker scenarios.
package envcontract

import (
	"go/ast"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the envcontract check.
var Analyzer = &analysis.Analyzer{
	Name: "envcontract",
	Doc:  "check that SDR_* environment reads go through the cluster typed env table",
	Run:  run,
}

// tableFile is the one file allowed to read SDR_* variables directly.
const tableFile = "env.go"

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			isGetenv := analysis.PkgFunc(pass.TypesInfo, call, "os", "Getenv")
			isLookup := analysis.PkgFunc(pass.TypesInfo, call, "os", "LookupEnv")
			if !isGetenv && !isLookup || len(call.Args) != 1 {
				return true
			}
			name, ok := analysis.ConstString(pass.TypesInfo, call.Args[0])
			if !ok || !strings.HasPrefix(name, "SDR_") {
				return true
			}
			if pass.IsTestFile(call.Pos()) {
				return true // tests stage raw worker environments on purpose
			}
			posn := pass.Fset.Position(call.Pos())
			if pass.Pkg.Name() == "cluster" && filepath.Base(posn.Filename) == tableFile {
				return true // the table itself
			}
			pass.Reportf(call.Pos(),
				"read of %s outside the cluster env table: use the typed accessors (cluster.EnvString/EnvInt/...) so the worker contract stays declared in one place", name)
			return true
		})
	}
	return nil
}
