package poolhandoff_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/poolhandoff"
)

func TestPoolHandoff(t *testing.T) {
	analysistest.Run(t, "testdata", poolhandoff.Analyzer, "a")
}
