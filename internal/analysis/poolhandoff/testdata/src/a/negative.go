package a

import "transport"

// This file must produce no diagnostics: every pattern here is a
// legitimate release or handoff (the negative cases the analyzer must
// not flag).

// handoffSetPooledData: the canonical eager-send shape — ownership of
// the payload transfers to the message, the message to the consumer.
func handoffSetPooledData(data []byte, consume func(*transport.Message)) {
	cp := transport.GetBuf(len(data))
	copy(cp, data)
	m := transport.GetMessage()
	m.SetPooledData(cp)
	consume(m)
}

// releasedOnAllPaths frees on both branches.
func releasedOnAllPaths(n int, ok bool) {
	b := transport.GetBuf(n)
	if ok {
		transport.FreeBuf(b)
	} else {
		transport.FreeBuf(b)
	}
}

// deferredRelease discharges every exit, early returns included.
func deferredRelease(n int, err error) error {
	b := transport.GetBuf(n)
	defer transport.FreeBuf(b)
	if err != nil {
		return err
	}
	_ = len(b)
	return nil
}

// returnedToCaller: ownership moves out with the return value.
func returnedToCaller(n int) []byte {
	b := transport.GetBuf(n)
	b[0] = 1
	return b
}

// passedToCallee: the callee owns it now.
func passedToCallee(n int, take func([]byte)) {
	b := transport.GetBuf(n)
	take(b)
}

// crashPathExempt: a panic path is fail-stop, not a leak.
func crashPathExempt(n int, err error) {
	b := transport.GetBuf(n)
	if err != nil {
		panic(err)
	}
	transport.FreeBuf(b)
}

// errorPathFrees: the decodeMessagePooled shape — free on failure, hand
// off on success.
func errorPathFrees(fill func(*transport.Message) error) (*transport.Message, error) {
	m := transport.GetMessage()
	if err := fill(m); err != nil {
		transport.FreeMessage(m)
		return nil, err
	}
	return m, nil
}

// loopTouched: flow under iteration is beyond the checker; it must stay
// silent rather than guess.
func loopTouched(n, k int) {
	b := transport.GetBuf(n)
	for i := 0; i < k; i++ {
		if i == k-1 {
			transport.FreeBuf(b)
		}
	}
}

// reassigned: the handle is overwritten — aliasing beyond the checker.
func reassigned(n int) {
	b := transport.GetBuf(n)
	b = append(b, 0)
	sink = b
}

// storedGlobally escapes into a longer-lived structure.
func storedGlobally(n int) {
	b := transport.GetBuf(n)
	sink = b
}

// bareLiteral is not pool-owned: FreeMessage on it is the documented
// no-op, and no obligation exists.
func bareLiteral() {
	m := &transport.Message{Tag: 1}
	transport.FreeMessage(m)
}

// batchStaged: the staging append is the one ownership handoff; the
// batch's flush releases the envelope, this frame owes nothing more.
func batchStaged(batch []*transport.Message) []*transport.Message {
	m := transport.GetMessage()
	m.Tag = 3
	batch = append(batch, m)
	return batch
}

// byteSplat: appending a pooled buffer's BYTES copies them — ownership
// stays here and the inline free is correct, not a double release.
func byteSplat(n int, out []byte) []byte {
	b := transport.GetBuf(n)
	out = append(out, b...)
	transport.FreeBuf(b)
	return out
}
