// Package a exercises the poolhandoff diagnostics: leaks on early
// return, leaks at scope end, conditional releases, and double releases.
package a

import (
	"errors"

	"transport"
)

var sink []byte

// earlyReturn leaks on the error path: the pooled buffer is owned and
// unreleased when the return runs.
func earlyReturn(n int, err error) error {
	b := transport.GetBuf(n)
	if err != nil {
		return err // want `return without releasing "b"`
	}
	transport.FreeBuf(b)
	return nil
}

// leakEnd never releases at all.
func leakEnd(n int) {
	b := transport.GetBuf(n) // want `"b" may go out of scope without`
	_ = len(b)
}

// condRelease releases on only one branch and falls off the end of the
// scope on the other.
func condRelease(n int, ok bool) {
	b := transport.GetBuf(n) // want `"b" may go out of scope without`
	if ok {
		transport.FreeBuf(b)
	}
}

// double releases the same buffer twice.
func double(n int) {
	b := transport.GetBuf(n)
	transport.FreeBuf(b)
	transport.FreeBuf(b) // want `double release`
}

// condDouble may have released already when the second release runs.
func condDouble(n int, ok bool) {
	b := transport.GetBuf(n)
	if ok {
		transport.FreeBuf(b)
	}
	transport.FreeBuf(b) // want `double release`
}

// deferDouble frees inline under an armed defer.
func deferDouble(n int) {
	b := transport.GetBuf(n)
	defer transport.FreeBuf(b)
	transport.FreeBuf(b) // want `double release`
}

// msgLeakConditional: envelope freed on one branch only.
func msgLeakConditional(c bool) {
	m := transport.GetMessage() // want `"m" may go out of scope without`
	m.Tag = 7
	if c {
		transport.FreeMessage(m)
	}
}

// switchLeak: a case without a release falls off the scope owned.
func switchLeak(n, mode int) {
	b := transport.GetBuf(n) // want `"b" may go out of scope without`
	switch mode {
	case 0:
		transport.FreeBuf(b)
	case 1:
		_ = cap(b)
	}
}

// innerBlockLeak: the obligation dies with its block, not the function.
func innerBlockLeak(n int, ok bool) {
	if ok {
		b := transport.GetBuf(n) // want `"b" may go out of scope without`
		_ = len(b)
	}
	errors.New("unrelated")
}

// batchDoubleFree: staging into a batch IS the handoff — the flush that
// empties the slice releases the envelope; freeing it here too hands the
// same envelope to two owners.
func batchDoubleFree(batch []*transport.Message) []*transport.Message {
	m := transport.GetMessage()
	batch = append(batch, m)
	transport.FreeMessage(m) // want `double release`
	return batch
}

// batchStageReleased: the mirror image — a freed envelope staged into a
// batch flushes recycled memory to the wire.
func batchStageReleased(batch []*transport.Message) []*transport.Message {
	m := transport.GetMessage()
	transport.FreeMessage(m)
	batch = append(batch, m) // want `staging a released pool object`
	return batch
}

// batchCondLeak: staged on one branch only; the other path still owns the
// envelope when the function returns.
func batchCondLeak(batch []*transport.Message, ok bool) []*transport.Message {
	m := transport.GetMessage()
	if ok {
		batch = append(batch, m)
	}
	return batch // want `return without releasing "m"`
}
