// Package transport is an analysistest stub of the real pool API: the
// analyzer matches Get/Free by package *name*, so these signatures are
// all it needs.
package transport

// Message is the pooled envelope stand-in.
type Message struct {
	Data []byte
	Tag  int
}

func GetBuf(n int) []byte { return make([]byte, n) }

func FreeBuf(b []byte) { _ = b }

func GetMessage() *Message { return new(Message) }

func FreeMessage(m *Message) { _ = m }

// SetPooledData transfers ownership of b to m.
func (m *Message) SetPooledData(b []byte) { m.Data = b }
