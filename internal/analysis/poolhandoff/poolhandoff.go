// Package poolhandoff checks the transport pool ownership protocol: a
// buffer or envelope obtained from transport.GetBuf / transport.GetMessage
// must, on every intra-procedural path, either be released exactly once
// (FreeBuf / FreeMessage, inline or deferred) or escape into a handoff
// (passed to a function, attached with SetPooledData, stored, sent,
// returned). Two diagnostic kinds:
//
//   - "leaked": a path (early return, end of the declaring block) on
//     which the object is still owned — the earlyAcks sweep bug of PR 4
//     was exactly this class, a pooled message retained on a path nobody
//     released.
//   - "double release": a path on which the object may already have been
//     released when a second release runs — releasing a pooled object
//     twice hands the same backing array to two future owners, the
//     corruption the paper's fail-stop model cannot see.
//
// The batch-first wire contract adds one transfer shape: staging into a
// batch slice (`batch = append(batch, m)`) is the ownership handoff — the
// flush that empties the slice releases every element exactly once. The
// analysis models the append as a release, so freeing a staged object (the
// batch double-free) and staging an already-freed one are both reported.
//
// The analysis is deliberately conservative: any use it cannot classify
// (stored, aliased, captured by a closure, touched inside a loop) counts
// as an ownership handoff and ends tracking. It therefore reports only
// violations visible in straight-line/branching code — which is where
// all of the historical bugs lived.
package poolhandoff

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the poolhandoff check.
var Analyzer = &analysis.Analyzer{
	Name: "poolhandoff",
	Doc:  "check that transport pool objects are released exactly once or handed off on every path",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				checkBody(pass, body)
			}
			return true
		})
	}
	return nil
}

// checkBody finds pool obligations created at the top levels of this
// function body (not inside nested function literals, which are visited
// as their own bodies) and runs the path walk for each.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested scope: its obligations are its own
		}
		blk, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, stmt := range blk.List {
			if v, get := obligationAt(pass, stmt); v != nil {
				o := &oblig{pass: pass, v: v, get: get}
				o.analyze(blk.List[i+1:])
			}
		}
		return true
	})
}

// obligationAt recognizes `v := transport.GetBuf(...)` and
// `v := transport.GetMessage(...)` (also plain `var v = ...`), returning
// the variable object and the allocating call.
func obligationAt(pass *analysis.Pass, stmt ast.Stmt) (*types.Var, *ast.CallExpr) {
	var lhs ast.Expr
	var rhs ast.Expr
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return nil, nil
		}
		lhs, rhs = s.Lhs[0], s.Rhs[0]
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok || len(gd.Specs) != 1 {
			return nil, nil
		}
		vs, ok := gd.Specs[0].(*ast.ValueSpec)
		if !ok || len(vs.Names) != 1 || len(vs.Values) != 1 {
			return nil, nil
		}
		lhs, rhs = vs.Names[0], vs.Values[0]
	default:
		return nil, nil
	}
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil, nil
	}
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || !isPoolGet(pass, call) {
		return nil, nil
	}
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = pass.TypesInfo.Uses[id]
	}
	v, _ := obj.(*types.Var)
	return v, call
}

func isPoolGet(pass *analysis.Pass, call *ast.CallExpr) bool {
	return analysis.PkgFunc(pass.TypesInfo, call, "transport", "GetBuf") ||
		analysis.PkgFunc(pass.TypesInfo, call, "transport", "GetMessage")
}

func isPoolFree(pass *analysis.Pass, call *ast.CallExpr) bool {
	return analysis.PkgFunc(pass.TypesInfo, call, "transport", "FreeBuf") ||
		analysis.PkgFunc(pass.TypesInfo, call, "transport", "FreeMessage")
}

// stateSet is the may-analysis lattice: which ownership states are
// possible at a program point. The empty set means "unreachable" (all
// paths terminated).
type stateSet uint8

const (
	owned    stateSet = 1 << iota // still this frame's responsibility
	released                      // already given back to the pool
)

// oblig tracks one pooled object through the statements after its
// allocation.
type oblig struct {
	pass     *analysis.Pass
	v        *types.Var
	get      *ast.CallExpr
	deferred bool // a `defer Free*(v)` discharges every later exit
	escaped  bool // unclassifiable use seen: stop all reporting
}

func (o *oblig) name() string { return o.v.Name() }

func (o *oblig) allocName() string {
	if fn := analysis.FuncOf(o.pass.TypesInfo, o.get); fn != nil {
		return fn.Name()
	}
	return "pool Get"
}

// analyze walks the remainder of the declaring block. Falling off the
// end of that block while possibly owned is a leak: the variable goes
// out of scope with the pool still waiting.
func (o *oblig) analyze(rest []ast.Stmt) {
	s := o.execStmts(rest, owned)
	if o.escaped {
		return
	}
	if s&owned != 0 && !o.deferred {
		o.pass.Reportf(o.get.Pos(),
			"%s result %q may go out of scope without FreeBuf/FreeMessage or handoff: leaked pool object",
			o.allocName(), o.name())
	}
}

func (o *oblig) execStmts(list []ast.Stmt, s stateSet) stateSet {
	for _, stmt := range list {
		if o.escaped || s == 0 {
			return s
		}
		s = o.exec(stmt, s)
	}
	return s
}

func (o *oblig) exec(stmt ast.Stmt, s stateSet) stateSet {
	switch st := stmt.(type) {
	case *ast.ExprStmt:
		call, ok := ast.Unparen(st.X).(*ast.CallExpr)
		if ok {
			if o.releaseOf(call) {
				if s&released != 0 || o.deferred {
					o.pass.Reportf(call.Pos(),
						"%q may already be released on this path: double release of pool object", o.name())
				}
				return released
			}
			if isTerminator(o.pass, call) {
				o.scan(call) // args still escape-checked (panic(v) hands off)
				return 0
			}
		}
		o.scan(st.X)
		return s

	case *ast.ReturnStmt:
		for _, r := range st.Results {
			if o.mentions(r) {
				o.escaped = true // ownership returned to the caller
				return 0
			}
		}
		if s&owned != 0 && !o.deferred {
			o.pass.Reportf(st.Pos(),
				"return without releasing %q (acquired via %s at line %d): leaked pool object",
				o.name(), o.allocName(), o.pass.Fset.Position(o.get.Pos()).Line)
		}
		return 0

	case *ast.AssignStmt:
		if o.batchStageOf(st) {
			// Staging into a batch slice is the ownership handoff of the
			// batch-first wire contract: the flush that empties the slice
			// releases every element exactly once. The object is as good as
			// released here — a later Free is the batch double-free.
			if s&released != 0 || o.deferred {
				o.pass.Reportf(st.Pos(),
					"%q may already be released on this path: staging a released pool object into a batch", o.name())
			}
			return released
		}
		for _, l := range st.Lhs {
			if id, ok := ast.Unparen(l).(*ast.Ident); ok && o.isVar(id) {
				// The only handle is overwritten; aliasing games are
				// beyond this checker, so stop tracking.
				o.escaped = true
				return s
			}
			o.scanLHS(l)
		}
		for _, r := range st.Rhs {
			o.scan(r)
		}
		return s

	case *ast.DeclStmt:
		o.scan(st.Decl)
		return s

	case *ast.DeferStmt:
		if o.releaseOf(st.Call) {
			if o.deferred {
				o.pass.Reportf(st.Call.Pos(),
					"%q is already released by an earlier defer: double release of pool object", o.name())
			}
			o.deferred = true
			return s
		}
		o.scan(st.Call)
		return s

	case *ast.GoStmt:
		o.scan(st.Call)
		return s

	case *ast.SendStmt:
		if o.mentions(st.Value) {
			o.escaped = true // handed to another goroutine
			return s
		}
		o.scan(st.Chan)
		return s

	case *ast.IfStmt:
		if st.Init != nil {
			s = o.exec(st.Init, s)
		}
		o.scan(st.Cond)
		sThen := o.execStmts(st.Body.List, s)
		sElse := s
		if st.Else != nil {
			sElse = o.exec(st.Else, s)
		}
		return sThen | sElse

	case *ast.BlockStmt:
		return o.execStmts(st.List, s)

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		return o.execSwitch(st, s)

	case *ast.SelectStmt:
		if len(st.Body.List) == 0 {
			return 0 // `select {}` blocks forever
		}
		out := stateSet(0)
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil {
				s = o.exec(cc.Comm, s)
			}
			out |= o.execStmts(cc.Body, s)
		}
		return out

	case *ast.ForStmt, *ast.RangeStmt:
		if o.usedIn(stmt) {
			// Releases or uses under iteration need flow the walker does
			// not model; treat as a handoff.
			o.escaped = true
			return s
		}
		// The loop cannot change the state, but returns inside it are
		// still paths out of the function.
		var body *ast.BlockStmt
		if f, ok := stmt.(*ast.ForStmt); ok {
			body = f.Body
		} else {
			body = stmt.(*ast.RangeStmt).Body
		}
		o.execStmts(body.List, s)
		return s

	case *ast.LabeledStmt:
		return o.exec(st.Stmt, s)

	case *ast.BranchStmt:
		// break/continue leave the enclosing loop or switch arm; the
		// union at the merge already over-approximates. goto is beyond
		// the walker: give up on this obligation.
		if st.Tok.String() == "goto" {
			o.escaped = true
		}
		return s

	case *ast.IncDecStmt:
		o.scan(st.X)
		return s

	case *ast.EmptyStmt:
		return s

	default:
		// Unknown statement kind: be safe, stop tracking if it touches v.
		if o.usedIn(stmt) {
			o.escaped = true
		}
		return s
	}
}

func (o *oblig) execSwitch(stmt ast.Stmt, s stateSet) stateSet {
	var init ast.Stmt
	var body *ast.BlockStmt
	var tag ast.Node
	switch sw := stmt.(type) {
	case *ast.SwitchStmt:
		init, body, tag = sw.Init, sw.Body, sw.Tag
	case *ast.TypeSwitchStmt:
		init, body, tag = sw.Init, sw.Body, sw.Assign
	}
	if init != nil {
		s = o.exec(init, s)
	}
	if e, ok := tag.(ast.Expr); ok && e != nil {
		o.scan(e)
	} else if st, ok := tag.(ast.Stmt); ok && st != nil {
		s = o.exec(st, s)
	}
	out := stateSet(0)
	hasDefault := false
	for _, c := range body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			o.scan(e)
		}
		out |= o.execStmts(cc.Body, s)
	}
	if !hasDefault {
		out |= s // no case may match
	}
	return out
}

// batchStageOf recognizes the batch staging idiom `batch = append(batch,
// v)` with v the tracked pool object: the append transfers ownership into
// the slice (whose flush is the one release for every element), so the
// object transitions to released rather than merely escaping — which is
// what makes the batch double-free detectable. The byte-splat form
// append(out, v...) copies bytes without transferring ownership and is
// left to the generic escape scan, as is any compound element burying v.
func (o *oblig) batchStageOf(st *ast.AssignStmt) bool {
	if len(st.Lhs) != 1 || len(st.Rhs) != 1 || o.mentions(st.Lhs[0]) {
		return false
	}
	call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
	if !ok || call.Ellipsis != token.NoPos || len(call.Args) < 2 {
		return false
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || !analysis.IsBuiltin(o.pass.TypesInfo, fn, "append") {
		return false
	}
	if o.mentions(call.Args[0]) {
		return false
	}
	staged := false
	for _, a := range call.Args[1:] {
		if id, ok := ast.Unparen(a).(*ast.Ident); ok && o.isVar(id) {
			staged = true
		} else if o.mentions(a) {
			return false // v buried inside a compound element: beyond the rule
		}
	}
	return staged
}

// releaseOf reports whether call is Free{Buf,Message}(v) (possibly of a
// reslice of v).
func (o *oblig) releaseOf(call *ast.CallExpr) bool {
	if !isPoolFree(o.pass, call) || len(call.Args) != 1 {
		return false
	}
	arg := ast.Unparen(call.Args[0])
	if sl, ok := arg.(*ast.SliceExpr); ok {
		arg = ast.Unparen(sl.X)
	}
	id, ok := arg.(*ast.Ident)
	return ok && o.isVar(id)
}

func (o *oblig) isVar(id *ast.Ident) bool {
	obj := o.pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = o.pass.TypesInfo.Defs[id]
	}
	return obj == o.v
}

// mentions reports whether the expression tree contains v at all.
func (o *oblig) mentions(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && o.isVar(id) {
			found = true
		}
		return !found
	})
	return found
}

func (o *oblig) usedIn(n ast.Node) bool { return o.mentions(n) }

// scan classifies every use of v in an expression tree. Benign uses —
// len/cap/copy, field access, indexing, method receiver, comparisons —
// keep tracking; anything else is an ownership handoff and sets escaped.
func (o *oblig) scan(n ast.Node) {
	if o.escaped || n == nil {
		return
	}
	switch e := n.(type) {
	case *ast.Ident:
		if o.isVar(e) {
			o.escaped = true // bare value use in an escaping position
		}
	case *ast.ParenExpr:
		o.scan(e.X)
	case *ast.SelectorExpr:
		// v.Field / v.Method — reading through v does not transfer
		// ownership (the method value case v.M as a value would, but
		// then v is the receiver of a bound method: treat as handoff).
		if id, ok := ast.Unparen(e.X).(*ast.Ident); ok && o.isVar(id) {
			return
		}
		o.scan(e.X)
	case *ast.IndexExpr:
		if id, ok := ast.Unparen(e.X).(*ast.Ident); ok && o.isVar(id) {
			o.scan(e.Index)
			return
		}
		o.scan(e.X)
		o.scan(e.Index)
	case *ast.SliceExpr:
		// A reslice is an alias; only safe where the alias itself stays
		// benign, which the caller contexts below arrange (copy/len).
		o.scan(e.X)
		o.scan(e.Low)
		o.scan(e.High)
		o.scan(e.Max)
	case *ast.BinaryExpr:
		// Comparisons and arithmetic never retain the operand.
		if id, ok := ast.Unparen(e.X).(*ast.Ident); !ok || !o.isVar(id) {
			o.scan(e.X)
		}
		if id, ok := ast.Unparen(e.Y).(*ast.Ident); !ok || !o.isVar(id) {
			o.scan(e.Y)
		}
	case *ast.CallExpr:
		o.scanCall(e)
	case *ast.UnaryExpr:
		if e.Op.String() == "&" && o.mentions(e.X) {
			o.escaped = true // address taken
			return
		}
		o.scan(e.X)
	case *ast.StarExpr:
		o.scan(e.X)
	case *ast.KeyValueExpr:
		o.scan(e.Key)
		o.scan(e.Value)
	default:
		if o.mentions(n) {
			o.escaped = true
		}
	}
}

// scanLHS classifies v on the left of an assignment: writes through v
// (v[i] = x, v.F = x) are benign; v itself as a store target was handled
// by the caller.
func (o *oblig) scanLHS(l ast.Expr) {
	switch e := ast.Unparen(l).(type) {
	case *ast.IndexExpr:
		if id, ok := ast.Unparen(e.X).(*ast.Ident); ok && o.isVar(id) {
			o.scan(e.Index)
			return
		}
		o.scan(e)
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(e.X).(*ast.Ident); ok && o.isVar(id) {
			return
		}
		o.scan(e)
	default:
		o.scan(l)
	}
}

// scanCall handles calls: v as receiver of a method and v under
// len/cap/copy stay benign; v as an ordinary argument is the canonical
// ownership handoff.
func (o *oblig) scanCall(call *ast.CallExpr) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		// Method call with v as receiver: SetPooledData and friends do
		// not consume the receiver.
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && o.isVar(id) {
			for _, a := range call.Args {
				if o.mentions(a) {
					o.escaped = true
					return
				}
			}
			return
		}
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if analysis.IsBuiltin(o.pass.TypesInfo, id, "len") ||
			analysis.IsBuiltin(o.pass.TypesInfo, id, "cap") ||
			analysis.IsBuiltin(o.pass.TypesInfo, id, "copy") {
			return // observing or moving bytes, never retaining ownership
		}
	}
	for _, a := range call.Args {
		if o.mentions(a) {
			o.escaped = true // handoff: callee owns it now
			return
		}
	}
	o.scan(call.Fun)
}

// isTerminator recognizes calls that never return: panic, os.Exit,
// runtime.Goexit, log.Fatal*, (*testing.T).Fatal*. Paths ending in them
// are crash paths; a leak there is irrelevant.
func isTerminator(pass *analysis.Pass, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if analysis.IsBuiltin(pass.TypesInfo, fun, "panic") {
			return true
		}
	case *ast.SelectorExpr:
		fn := analysis.FuncOf(pass.TypesInfo, call)
		if fn == nil {
			return false
		}
		name := fn.Name()
		if fn.Pkg() != nil {
			switch fn.Pkg().Name() {
			case "os":
				return name == "Exit"
			case "runtime":
				return name == "Goexit"
			case "log":
				return name == "Fatal" || name == "Fatalf" || name == "Fatalln"
			}
		}
		return name == "Fatal" || name == "Fatalf" || name == "FailNow" || name == "Skip" || name == "Skipf" || name == "SkipNow"
	}
	return false
}
