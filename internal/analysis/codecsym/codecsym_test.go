package codecsym_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/codecsym"
)

func TestCodecSym(t *testing.T) {
	analysistest.Run(t, "testdata", codecsym.Analyzer, "codec")
}
