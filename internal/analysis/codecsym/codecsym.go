// Package codecsym checks the fail-closed codec conventions PR 5
// established after the sequencer pinned-slot and replay-state bugs:
//
//   - Every exported package-level EncodeX has a DecodeX in the same
//     package, and vice versa. A one-sided codec is how wire formats
//     drift: the writer evolves and the (missing) reader silently keeps
//     accepting stale frames.
//   - Every exported DecodeX returns an error as its last result. The
//     recovery ladder depends on decoders failing closed — returning an
//     error the caller can turn into "ignore the frame" — never
//     panicking or guessing.
//   - Inside a DecodeX, an allocation sized from wire input
//     (make([]T, n) with non-constant n) must be preceded by a length
//     bound check (an if-condition involving len of the input). A
//     corrupt count field must not be able to drive a multi-gigabyte
//     allocation before validation.
package codecsym

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the codecsym check.
var Analyzer = &analysis.Analyzer{
	Name: "codecsym",
	Doc:  "check Encode/Decode pairing and fail-closed decoder discipline",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	encoders := map[string]*ast.FuncDecl{} // suffix X → EncodeX decl
	decoders := map[string]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || !fd.Name.IsExported() {
				continue
			}
			name := fd.Name.Name
			switch {
			case strings.HasPrefix(name, "Encode") && len(name) > len("Encode"):
				encoders[name[len("Encode"):]] = fd
			case strings.HasPrefix(name, "Decode") && len(name) > len("Decode"):
				decoders[name[len("Decode"):]] = fd
			}
		}
	}

	for x, fd := range encoders {
		if decoders[x] == nil {
			pass.Reportf(fd.Name.Pos(),
				"Encode%s has no matching Decode%s in package %s: codec pair is one-sided", x, x, pass.Pkg.Name())
		}
	}
	for x, fd := range decoders {
		if encoders[x] == nil {
			pass.Reportf(fd.Name.Pos(),
				"Decode%s has no matching Encode%s in package %s: codec pair is one-sided", x, x, pass.Pkg.Name())
		}
		checkDecoder(pass, fd)
	}
	return nil
}

// checkDecoder enforces the fail-closed rules on one DecodeX.
func checkDecoder(pass *analysis.Pass, fd *ast.FuncDecl) {
	if !returnsError(pass, fd) {
		pass.Reportf(fd.Name.Pos(),
			"%s must return an error as its last result: decoders fail closed, they never guess", fd.Name.Name)
	}
	if fd.Body == nil {
		return
	}

	// Collect the positions of every bound check: an if-condition that
	// looks at len(x) (the input length, or a slice derived from it).
	var guards []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if condUsesLen(pass, ifs.Cond) {
			guards = append(guards, ifs.Pos())
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || !analysis.IsBuiltin(pass.TypesInfo, id, "make") || len(call.Args) < 2 {
			return true
		}
		argType := pass.TypesInfo.Types[call.Args[0]].Type
		if argType == nil {
			return true
		}
		if _, isSlice := argType.Underlying().(*types.Slice); !isSlice {
			return true
		}
		size := call.Args[1]
		if tv, ok := pass.TypesInfo.Types[size]; ok && tv.Value != nil {
			return true // constant size: harmless
		}
		if exprUsesLen(pass, size) {
			return true // sized directly from the input length
		}
		for _, g := range guards {
			if g < call.Pos() {
				return true // a bound check dominates textually; good enough
			}
		}
		pass.Reportf(call.Pos(),
			"%s allocates from wire-derived size without a prior length bound check: validate before make", fd.Name.Name)
		return true
	})
}

func returnsError(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	obj := pass.TypesInfo.Defs[fd.Name]
	if obj == nil {
		return true // no type info: stay silent
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// condUsesLen reports whether the condition contains a builtin len(...)
// call — the shape of every length bound check in the codecs.
func condUsesLen(pass *analysis.Pass, cond ast.Expr) bool {
	return exprUsesLen(pass, cond)
}

func exprUsesLen(pass *analysis.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && analysis.IsBuiltin(pass.TypesInfo, id, "len") {
			found = true
		}
		return !found
	})
	return found
}
