// Package codec exercises the codecsym diagnostics: one-sided pairs,
// decoders that cannot fail closed, and unguarded wire-sized
// allocations.
package codec

import (
	"encoding/binary"
	"errors"
)

// Rec is a fixed-size record for the well-formed pair below.
type Rec struct{ A, B uint32 }

// EncodeRecs is the good half of a symmetric pair.
func EncodeRecs(dst []byte, recs []Rec) []byte {
	for _, r := range recs {
		dst = binary.LittleEndian.AppendUint32(dst, r.A)
		dst = binary.LittleEndian.AppendUint32(dst, r.B)
	}
	return dst
}

// DecodeRecs bound-checks before allocating: the negative case.
func DecodeRecs(b []byte) ([]Rec, error) {
	if len(b)%8 != 0 {
		return nil, errors.New("codec: truncated record frame")
	}
	n := len(b) / 8
	out := make([]Rec, n)
	for i := range out {
		out[i].A = binary.LittleEndian.Uint32(b[i*8:])
		out[i].B = binary.LittleEndian.Uint32(b[i*8+4:])
	}
	return out, nil
}

// EncodeOrphan has no decoder.
func EncodeOrphan(dst []byte, v uint64) []byte { // want `EncodeOrphan has no matching DecodeOrphan`
	return binary.LittleEndian.AppendUint64(dst, v)
}

// DecodeWidow has no encoder.
func DecodeWidow(b []byte) (uint64, error) { // want `DecodeWidow has no matching EncodeWidow`
	if len(b) < 8 {
		return 0, errors.New("codec: short frame")
	}
	return binary.LittleEndian.Uint64(b), nil
}

// EncodeLoose pairs with the lossy decoder below.
func EncodeLoose(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

// DecodeLoose cannot report corruption.
func DecodeLoose(b []byte) uint32 { // want `DecodeLoose must return an error`
	return binary.LittleEndian.Uint32(b)
}

// EncodeGreedy pairs with the unguarded decoder below.
func EncodeGreedy(dst []byte, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...)
}

// DecodeGreedy trusts a wire-supplied count before validating it.
func DecodeGreedy(b []byte) ([]byte, error) {
	n := int(binary.LittleEndian.Uint32(b))
	out := make([]byte, n) // want `allocates from wire-derived size without a prior length bound check`
	copy(out, b[4:])
	return out, nil
}
