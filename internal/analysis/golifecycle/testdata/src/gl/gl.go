package gl

import (
	"context"
	"sync"
)

// Svc is long-lived: it has a Close.
type Svc struct {
	mu   sync.Mutex
	wg   sync.WaitGroup
	done chan struct{}
	ch   chan int
	n    int
}

func (s *Svc) Close() error {
	close(s.done)
	s.wg.Wait()
	return nil
}

func doneOK(s *Svc) *Svc {
	go func() {
		for {
			select {
			case <-s.done:
				return
			case v := <-s.ch:
				_ = v
			}
		}
	}()
	return s
}

func rangeOK(s *Svc) *Svc {
	go func() {
		for v := range s.ch {
			_ = v
		}
	}()
	return s
}

func (s *Svc) StartWG() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.n++
	}()
}

func (s *Svc) StartCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func (s *Svc) loop() {
	for {
		select {
		case <-s.done:
			return
		case v := <-s.ch:
			_ = v
		}
	}
}

func (s *Svc) StartMethod() {
	go s.loop() // body of a declared method counts too
}

func (s *Svc) StartLeak() {
	go func() { // want `not joinable`
		s.n++
	}()
}

func (s *Svc) StartNoAdd() {
	go func() { // want `Add does not precede the go statement`
		defer s.wg.Done()
		s.n++
	}()
}

func NewSvc() *Svc {
	s := &Svc{done: make(chan struct{}), ch: make(chan int)}
	go func() { // want `not joinable`
		for v := range s.ch2() {
			_ = v
		}
	}()
	return s
}

func (s *Svc) ch2() chan int { return make(chan int) }

// Orphan has a Close that never waits, so WaitGroup registration on it
// does not join.
type Orphan struct {
	wg sync.WaitGroup
	n  int
}

func (o *Orphan) Close() error { return nil }

func (o *Orphan) Start() {
	o.wg.Add(1)
	go func() { // want `Close/Stop/Shutdown never calls wg\.Wait`
		defer o.wg.Done()
		o.n++
	}()
}

// Plain has no Close: its goroutines are not checked.
type Plain struct{ n int }

func (p *Plain) Start() {
	go func() {
		p.n++
	}()
}

// freeFunc returns nothing long-lived: not checked.
func freeFunc() {
	go func() {}()
}
