package golifecycle_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/golifecycle"
)

func TestGolifecycle(t *testing.T) {
	analysistest.Run(t, "testdata", golifecycle.Analyzer, "gl")
}
