// Package golifecycle checks that every goroutine launched from a
// long-lived type is joinable by that type's Close/Stop/Shutdown.
//
// A type is long-lived when it declares a Close, Stop, or Shutdown
// method. For every `go` statement in its methods (and in constructors
// returning it), the goroutine body must either
//
//   - receive on a done/ctx signal — a channel field of the owner type
//     or ctx.Done() — so shutdown can interrupt it, or
//   - be WaitGroup-registered on a path Close waits on: wg.Add on a
//     WaitGroup field of the owner before the go statement, wg.Done in
//     the body, and wg.Wait in Close/Stop/Shutdown.
//
// Anything else is a leak: the goroutine outlives Close, keeps its
// captures alive, and races the teardown — exactly the leaked
// flushTick/ring-scanner class in engine-less wire constructions the
// PR 8 review hunted by hand. There is deliberately no waiver
// annotation: a flagged goroutine gets fixed, not excused.
//
// Test files are exempt (test goroutines are bounded by the test).
package golifecycle

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "golifecycle",
	Doc:  "check that goroutines launched from long-lived types are joinable by Close",
	Run:  run,
}

var closeNames = map[string]bool{"Close": true, "Stop": true, "Shutdown": true}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:       pass,
		decls:      map[*types.Func]*ast.FuncDecl{},
		closers:    map[*types.Named]bool{},
		closeWaits: map[*types.Named]map[*types.Var]bool{},
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			c.decls[fn] = fd
			if named := recvNamed(fn); named != nil && closeNames[fn.Name()] {
				c.closers[named] = true
			}
		}
	}
	// Which WaitGroup fields each closer type's Close/Stop/Shutdown
	// actually waits on.
	for fn, fd := range c.decls {
		named := recvNamed(fn)
		if named == nil || !closeNames[fn.Name()] {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				if v := analysis.FieldVar(pass.TypesInfo, sel.X); v != nil && isWaitGroup(v.Type()) && isFieldOf(named, v) {
					m := c.closeWaits[named]
					if m == nil {
						m = map[*types.Var]bool{}
						c.closeWaits[named] = m
					}
					m[v] = true
				}
			}
			return true
		})
	}

	for fn, fd := range c.decls {
		if pass.IsTestFile(fd.Pos()) {
			continue
		}
		owner := c.ownerOf(fn)
		if owner == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			c.checkGo(g, fd, owner)
			return true
		})
	}
	return nil
}

type checker struct {
	pass       *analysis.Pass
	decls      map[*types.Func]*ast.FuncDecl
	closers    map[*types.Named]bool
	closeWaits map[*types.Named]map[*types.Var]bool
}

// ownerOf resolves the long-lived type a function launches goroutines
// from: its receiver, or — for constructors — a result type that has a
// closer.
func (c *checker) ownerOf(fn *types.Func) *types.Named {
	if named := recvNamed(fn); named != nil {
		if c.closers[named] {
			return named
		}
		return nil
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return nil
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if named := namedOf(sig.Results().At(i).Type()); named != nil && c.closers[named] {
			return named
		}
	}
	return nil
}

func (c *checker) checkGo(g *ast.GoStmt, enclosing *ast.FuncDecl, owner *types.Named) {
	body := c.goBody(g)
	if body != nil {
		if c.hasDoneSignal(body, owner) {
			return
		}
		if wg := c.wgDoneField(body, owner); wg != nil {
			if !c.addBefore(enclosing, g, wg) {
				c.pass.Reportf(g.Pos(), "goroutine runs %s.Done but %s.Add does not precede the go statement; the WaitGroup can hit zero early", wg.Name(), wg.Name())
				return
			}
			if !c.closeWaits[owner][wg] {
				c.pass.Reportf(g.Pos(), "goroutine registers on %s but %s's Close/Stop/Shutdown never calls %s.Wait; the goroutine is not joined", wg.Name(), owner.Obj().Name(), wg.Name())
				return
			}
			return
		}
	}
	c.pass.Reportf(g.Pos(), "goroutine launched from %s (which has Close/Stop/Shutdown) is not joinable: its body neither receives on a done/ctx channel of %s nor registers on a WaitGroup that Close waits on",
		owner.Obj().Name(), owner.Obj().Name())
}

// goBody resolves the launched function's body: a literal, or a
// function/method declared in this package.
func (c *checker) goBody(g *ast.GoStmt) *ast.BlockStmt {
	if fl, ok := g.Call.Fun.(*ast.FuncLit); ok {
		return fl.Body
	}
	if fn := analysis.FuncOf(c.pass.TypesInfo, g.Call); fn != nil {
		if fd := c.decls[fn]; fd != nil {
			return fd.Body
		}
	}
	return nil
}

// hasDoneSignal reports whether the body receives on a channel field of
// the owner (directly, in a select, or by range) or on ctx.Done().
func (c *checker) hasDoneSignal(body *ast.BlockStmt, owner *types.Named) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		var recv ast.Expr
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				recv = n.X
			}
		case *ast.RangeStmt:
			recv = n.X
		}
		if recv == nil {
			return true
		}
		tv, ok := c.pass.TypesInfo.Types[recv]
		if !ok {
			return true
		}
		if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
			return true
		}
		if call, ok := ast.Unparen(recv).(*ast.CallExpr); ok {
			if fn := analysis.FuncOf(c.pass.TypesInfo, call); fn != nil && fn.Name() == "Done" && fn.Pkg() != nil && fn.Pkg().Path() == "context" {
				found = true
			}
			return true
		}
		if v := analysis.FieldVar(c.pass.TypesInfo, recv); v != nil && isFieldOf(owner, v) {
			found = true
		}
		return true
	})
	return found
}

// wgDoneField returns the owner WaitGroup field the body calls Done on
// (directly or deferred), if any.
func (c *checker) wgDoneField(body *ast.BlockStmt, owner *types.Named) *types.Var {
	var wg *types.Var
	ast.Inspect(body, func(n ast.Node) bool {
		if wg != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" {
			return true
		}
		if v := analysis.FieldVar(c.pass.TypesInfo, sel.X); v != nil && isWaitGroup(v.Type()) && isFieldOf(owner, v) {
			wg = v
		}
		return true
	})
	return wg
}

// addBefore reports whether enclosing calls Add on the WaitGroup field
// before the go statement.
func (c *checker) addBefore(enclosing *ast.FuncDecl, g *ast.GoStmt, wg *types.Var) bool {
	found := false
	ast.Inspect(enclosing.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if call.Pos() >= g.Pos() {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Add" {
			if v := analysis.FieldVar(c.pass.TypesInfo, sel.X); v == wg {
				found = true
			}
		}
		return true
	})
	return found
}

func recvNamed(fn *types.Func) *types.Named {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return nil
	}
	return namedOf(sig.Recv().Type())
}

func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func isFieldOf(named *types.Named, v *types.Var) bool {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i) == v {
			return true
		}
	}
	return false
}

func isWaitGroup(t types.Type) bool {
	named := namedOf(t)
	return named != nil && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}
