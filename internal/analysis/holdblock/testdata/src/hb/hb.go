package hb

import (
	"encoding/json"
	"net"
	"sync"
	"time"
)

type H struct {
	mu   sync.Mutex // sdr:lockrank hb
	cv   *sync.Cond
	wg   sync.WaitGroup
	n    int
	ch   chan int
	done chan struct{}
	conn net.Conn
}

func sleepHeld(h *H) {
	h.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while holding h\.mu \(rank hb\)`
	h.mu.Unlock()
}

func sleepWaivedSameLine(h *H) {
	h.mu.Lock()
	time.Sleep(time.Millisecond) // sdr:holdblock-ok startup settle under test
	h.mu.Unlock()
}

func sleepWaivedLineAbove(h *H) {
	h.mu.Lock()
	// sdr:holdblock-ok retry pacing is deliberate here
	time.Sleep(time.Millisecond)
	h.mu.Unlock()
}

func notHeld(h *H) {
	time.Sleep(time.Millisecond)
	<-h.ch
	h.ch <- 1
}

func netWriteHeld(h *H) {
	h.mu.Lock()
	defer h.mu.Unlock()
	_, _ = h.conn.Write(nil) // want `net connection Write while holding h\.mu \(rank hb\)`
}

func dialHeld(h *H) {
	h.mu.Lock()
	defer h.mu.Unlock()
	c, err := net.Dial("tcp", "localhost:0") // want `net\.Dial while holding`
	if err == nil {
		c.Close()
	}
}

func encodeHeld(h *H, enc *json.Encoder) {
	h.mu.Lock()
	defer h.mu.Unlock()
	_ = enc.Encode(h.n) // want `json stream Encode while holding`
}

func recvHeld(h *H) {
	h.mu.Lock()
	v := <-h.ch // want `bare channel receive while holding`
	_ = v
	h.mu.Unlock()
}

func sendHeld(h *H) {
	h.mu.Lock()
	h.ch <- 1 // want `bare channel send while holding`
	h.mu.Unlock()
}

func rangeHeld(h *H) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for range h.ch { // want `range over channel while holding`
	}
}

func selectNoEscape(h *H) {
	h.mu.Lock()
	defer h.mu.Unlock()
	select { // want `select with no default and no done/ctx case while holding`
	case v := <-h.ch:
		_ = v
	}
}

func selectDefaultOK(h *H) {
	h.mu.Lock()
	defer h.mu.Unlock()
	select {
	case v := <-h.ch:
		_ = v
	default:
	}
}

func selectDoneOK(h *H) {
	h.mu.Lock()
	defer h.mu.Unlock()
	select {
	case <-h.done:
	case v := <-h.ch:
		_ = v
	}
}

func condLoopOK(h *H) {
	h.mu.Lock()
	for h.n == 0 {
		h.cv.Wait()
	}
	h.mu.Unlock()
}

func condNoLoop(h *H) {
	h.mu.Lock()
	h.cv.Wait() // want `sync\.Cond\.Wait outside a for loop while holding`
	h.mu.Unlock()
}

func wgWaitHeld(h *H) {
	h.mu.Lock()
	h.wg.Wait() // want `sync\.WaitGroup\.Wait while holding`
	h.mu.Unlock()
}

func dialBackoff() {
	time.Sleep(time.Millisecond)
}

func viaHelper(h *H) {
	h.mu.Lock()
	defer h.mu.Unlock()
	dialBackoff() // want `call to dialBackoff, which blocks \(time\.Sleep at .*\), while holding h\.mu`
}

func flushLocked(h *H) {
	_, _ = h.conn.Write(nil) // sdr:holdblock-ok audited FIFO flush for the test corpus
}

func viaWaivedHelper(h *H) {
	h.mu.Lock()
	defer h.mu.Unlock()
	flushLocked(h) // the helper's blocking op is waived: no finding
}

func spawnOK(h *H) {
	h.mu.Lock()
	defer h.mu.Unlock()
	go func() {
		time.Sleep(time.Millisecond) // runs on its own goroutine: fine
	}()
}

func litOK(h *H) {
	h.mu.Lock()
	defer h.mu.Unlock()
	f := func() { time.Sleep(time.Millisecond) }
	_ = f
}
