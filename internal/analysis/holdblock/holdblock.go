// Package holdblock flags blocking operations performed while a named
// (sdr:lockrank-annotated) mutex is held.
//
// Blocking operations: time.Sleep; net dials, listens, and connection
// I/O (Read/Write/ReadFrom/WriteTo on net types, including the vectored
// net.Buffers.WriteTo); JSON stream Encode/Decode (the control plane's
// conn-backed codecs); sync.WaitGroup.Wait; sync.Cond.Wait outside a for
// loop; bare channel sends and receives; range over a channel; and a
// select with neither a default nor a done-ish case. A call to a
// same-package function whose body directly contains an unwaived
// blocking operation is flagged at the call site too (one level deep),
// which is how a dial hidden behind a helper surfaces.
//
// A deliberate, audited hold-while-blocking site carries
// // sdr:holdblock-ok <reason> on the same line or the line above — the
// PR 8 FIFO-across-flush design (batch mutex held across the vectored
// write so staging order IS emission order) becomes one annotation
// instead of folklore.
package holdblock

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "holdblock",
	Doc:  "flag blocking operations while a named mutex is held",
	Run:  run,
}

// blocked is one direct blocking operation inside a function body.
type blocked struct {
	desc string
	pos  token.Pos
}

func run(pass *analysis.Pass) error {
	an := analysis.ParseAnnotations(pass)
	if len(an.Ranks) == 0 {
		return nil
	}
	tracked := func(v *types.Var) bool { _, ok := an.Ranks[v]; return ok }

	c := &checker{pass: pass, an: an, inFor: map[*ast.CallExpr]bool{}, reported: map[token.Pos]bool{}}
	c.markForLoops()

	// One-level summaries: each function's direct, unwaived blocking ops.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}
	summaries := map[*types.Func][]blocked{}
	for fn, fd := range decls {
		var ops []blocked
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.FuncLit, *ast.GoStmt:
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if desc, ok := c.blockingCall(call); ok {
				if _, waived := an.HoldOK(pass.Fset, call.Pos()); !waived {
					ops = append(ops, blocked{desc: desc, pos: call.Pos()})
				}
			}
			return true
		})
		if len(ops) > 0 {
			summaries[fn] = ops
		}
	}

	for _, fd := range decls {
		w := &analysis.LockWalker{
			Info:    pass.TypesInfo,
			Tracked: tracked,
			OnNode: func(n ast.Node, held []analysis.LockUse, inComm bool) {
				if len(held) == 0 {
					return
				}
				c.checkNode(n, held, inComm, summaries)
			},
		}
		w.Walk(fd.Body)
	}
	return nil
}

type checker struct {
	pass     *analysis.Pass
	an       *analysis.Annot
	inFor    map[*ast.CallExpr]bool // calls lexically inside a for/range body
	reported map[token.Pos]bool
}

// markForLoops records which calls sit inside a loop body, for the
// cond.Wait-must-loop rule.
func (c *checker) markForLoops() {
	for _, f := range c.pass.Files {
		var ranges [][2]token.Pos
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt:
				ranges = append(ranges, [2]token.Pos{n.Body.Pos(), n.Body.End()})
			case *ast.RangeStmt:
				ranges = append(ranges, [2]token.Pos{n.Body.Pos(), n.Body.End()})
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, r := range ranges {
				if call.Pos() >= r[0] && call.End() <= r[1] {
					c.inFor[call] = true
					break
				}
			}
			return true
		})
	}
}

func (c *checker) report(pos token.Pos, desc string, held []analysis.LockUse) {
	if c.reported[pos] {
		return
	}
	if _, ok := c.an.HoldOK(c.pass.Fset, pos); ok {
		return
	}
	c.reported[pos] = true
	names := make([]string, len(held))
	for i, h := range held {
		names[i] = fmt.Sprintf("%s (rank %s)", h.Path, c.an.Ranks[h.Field])
	}
	c.pass.Reportf(pos, "%s while holding %s; release the lock or annotate sdr:holdblock-ok <reason>",
		desc, strings.Join(names, ", "))
}

func (c *checker) checkNode(n ast.Node, held []analysis.LockUse, inComm bool, summaries map[*types.Func][]blocked) {
	switch n := n.(type) {
	case *ast.CallExpr:
		if desc, ok := c.blockingCall(n); ok {
			c.report(n.Pos(), desc, held)
			return
		}
		if fn := analysis.FuncOf(c.pass.TypesInfo, n); fn != nil {
			if ops := summaries[fn]; len(ops) > 0 {
				c.report(n.Pos(), fmt.Sprintf("call to %s, which blocks (%s at %s),",
					fn.Name(), ops[0].desc, c.pass.Fset.Position(ops[0].pos)), held)
			}
		}
	case *ast.UnaryExpr:
		if n.Op == token.ARROW && !inComm {
			c.report(n.Pos(), "bare channel receive", held)
		}
	case *ast.SendStmt:
		if !inComm {
			c.report(n.Pos(), "bare channel send", held)
		}
	case *ast.RangeStmt:
		if tv, ok := c.pass.TypesInfo.Types[n.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				c.report(n.Pos(), "range over channel", held)
			}
		}
	case *ast.SelectStmt:
		if !selectHasEscape(n) {
			c.report(n.Pos(), "select with no default and no done/ctx case", held)
		}
	}
}

// blockingCall classifies one call as a known blocking operation.
func (c *checker) blockingCall(call *ast.CallExpr) (string, bool) {
	fn := analysis.FuncOf(c.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	pkg, name := fn.Pkg().Name(), fn.Name()
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return "", false
	}
	if sig.Recv() == nil {
		switch {
		case pkg == "time" && name == "Sleep":
			return "time.Sleep", true
		case pkg == "net" && (name == "Dial" || name == "DialTimeout" || name == "Listen" || name == "ListenPacket"):
			return "net." + name, true
		}
		return "", false
	}
	switch {
	case pkg == "net" && (name == "Read" || name == "Write" || name == "ReadFrom" || name == "WriteTo"):
		return "net connection " + name, true
	case pkg == "json" && (name == "Encode" || name == "Decode"):
		return "json stream " + name, true
	case pkg == "sync" && name == "Wait":
		recv := sig.Recv().Type().String()
		if strings.HasSuffix(recv, "Cond") {
			if c.inFor[call] {
				return "", false // the correct cond.Wait idiom
			}
			return "sync.Cond.Wait outside a for loop", true
		}
		return "sync.WaitGroup.Wait", true
	}
	return "", false
}

// selectHasEscape reports whether a select can avoid blocking
// indefinitely: a default case, or a done-ish receive (done/quit/stop
// channel fields, ctx.Done()) that shutdown closes.
func selectHasEscape(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			return true // default
		}
		var recv ast.Expr
		switch s := cc.Comm.(type) {
		case *ast.ExprStmt:
			if u, ok := s.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				recv = u.X
			}
		case *ast.AssignStmt:
			if len(s.Rhs) == 1 {
				if u, ok := s.Rhs[0].(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					recv = u.X
				}
			}
		}
		if recv == nil {
			continue
		}
		src := strings.ToLower(types.ExprString(recv))
		for _, hint := range []string{"done", "quit", "stop", "close", "ctx"} {
			if strings.Contains(src, hint) {
				return true
			}
		}
	}
	return false
}
