package holdblock_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/holdblock"
)

func TestHoldblock(t *testing.T) {
	analysistest.Run(t, "testdata", holdblock.Analyzer, "hb")
}
