package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Loaded is one parsed and type-checked package, ready to run analyzers
// over.
type Loaded struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// SrcDeps holds every package source-loaded in the same session
	// (testdata stubs), keyed by import path; RunAnalyzer computes facts
	// over them for fact-exporting analyzers.
	SrcDeps map[string]*Loaded

	// Facts carries pre-read dependency fact blobs, analyzer name →
	// import path → blob (the unitchecker driver fills it from the vetx
	// files the go command hands it).
	Facts map[string]map[string][]byte
}

// NewTypesInfo allocates the maps every analyzer relies on.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// exportCache memoizes `go list -export` lookups of build-cache export
// data, shared across all loads in the process (analysistest runs many).
var exportCache sync.Map // import path → string file path ("" = failed)

// exportDataFile asks the go command for the export-data file of one
// import path (stdlib or in-module). The build cache makes repeat calls
// cheap, and nothing here touches the network: the module has no
// external dependencies.
func exportDataFile(path string) (string, error) {
	if v, ok := exportCache.Load(path); ok {
		if f := v.(string); f != "" {
			return f, nil
		}
		return "", fmt.Errorf("no export data for %q", path)
	}
	out, err := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path).Output()
	file := strings.TrimSpace(string(out))
	if err != nil || file == "" {
		exportCache.Store(path, "")
		return "", fmt.Errorf("go list -export %s: %v", path, err)
	}
	exportCache.Store(path, file)
	return file, nil
}

// dirLoader resolves imports first against GOPATH-style source roots
// (testdata/src), then against the go command's build cache. Source-root
// packages are themselves loaded (and memoized) recursively, so an
// analyzer's testdata can stub the packages its invariant is about.
type dirLoader struct {
	fset     *token.FileSet
	srcRoots []string
	loaded   map[string]*types.Package
	src      map[string]*Loaded // source-loaded packages, by import path
	gc       types.Importer
}

func newDirLoader(fset *token.FileSet, srcRoots []string) *dirLoader {
	l := &dirLoader{fset: fset, srcRoots: srcRoots, loaded: map[string]*types.Package{}, src: map[string]*Loaded{}}
	l.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, err := exportDataFile(path)
		if err != nil {
			return nil, err
		}
		return os.Open(file)
	})
	return l
}

func (l *dirLoader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.loaded[path]; ok {
		return pkg, nil
	}
	for _, root := range l.srcRoots {
		dir := filepath.Join(root, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			lp, err := l.load(dir, path)
			if err != nil {
				return nil, err
			}
			return lp.Pkg, nil
		}
	}
	pkg, err := l.gc.Import(path)
	if err != nil {
		return nil, err
	}
	l.loaded[path] = pkg
	return pkg, nil
}

// load parses every non-test .go file in dir and type-checks it as the
// package with the given import path.
func (l *dirLoader) load(dir, path string) (*Loaded, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewTypesInfo()
	conf := &types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	l.loaded[path] = pkg
	lp := &Loaded{Fset: l.fset, Files: files, Pkg: pkg, Info: info, SrcDeps: l.src}
	l.src[path] = lp
	return lp, nil
}

// LoadDir parses and type-checks the package in dir. Imports resolve
// against srcRoots first (GOPATH-style: srcRoot/<import path>), then via
// the go command's build cache — which covers both the standard library
// and this module's own packages.
func LoadDir(dir string, srcRoots []string) (*Loaded, error) {
	importPath := filepath.Base(dir)
	for _, root := range srcRoots {
		if rel, err := filepath.Rel(root, dir); err == nil && !strings.HasPrefix(rel, "..") {
			importPath = filepath.ToSlash(rel)
		}
	}
	return newDirLoader(token.NewFileSet(), srcRoots).load(dir, importPath)
}

// RunAnalyzer applies one analyzer to a loaded package and returns the
// diagnostics in position order. Fact-exporting analyzers see the facts
// of their dependencies: driver-supplied blobs (lp.Facts) merged with
// facts computed on the fly over source-loaded testdata packages.
func RunAnalyzer(a *Analyzer, lp *Loaded) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:      a,
		Fset:          lp.Fset,
		Files:         lp.Files,
		Pkg:           lp.Pkg,
		TypesInfo:     lp.Info,
		Report:        func(d Diagnostic) { diags = append(diags, d) },
		ImportedFacts: importedFactsFor(a, lp),
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// ExportFactsFor runs a's fact exporter over lp (with its dependencies'
// facts resolved the same way as RunAnalyzer). Nil for factless
// analyzers and factless packages.
func ExportFactsFor(a *Analyzer, lp *Loaded) ([]byte, error) {
	if a.ExportFacts == nil {
		return nil, nil
	}
	pass := &Pass{
		Analyzer:      a,
		Fset:          lp.Fset,
		Files:         lp.Files,
		Pkg:           lp.Pkg,
		TypesInfo:     lp.Info,
		Report:        func(Diagnostic) {},
		ImportedFacts: importedFactsFor(a, lp),
	}
	return a.ExportFacts(pass)
}

// importedFactsFor assembles the dependency fact blobs one analyzer sees
// over one package.
func importedFactsFor(a *Analyzer, lp *Loaded) map[string][]byte {
	out := map[string][]byte{}
	for p, blob := range lp.Facts[a.Name] {
		out[p] = blob
	}
	if a.ExportFacts != nil {
		memo := map[string][]byte{}
		for path, dep := range lp.SrcDeps {
			if lp.Pkg != nil && path == lp.Pkg.Path() {
				continue
			}
			if blob := srcFactsOf(a, dep, memo); blob != nil {
				out[path] = blob
			}
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// srcFactsOf memoizes fact computation over one source-loaded package
// (testdata stubs import each other, so recursion resolves their facts
// in dependency order; the nil placeholder guards against cycles).
func srcFactsOf(a *Analyzer, lp *Loaded, memo map[string][]byte) []byte {
	path := lp.Pkg.Path()
	if blob, ok := memo[path]; ok {
		return blob
	}
	memo[path] = nil
	imported := map[string][]byte{}
	for p, dep := range lp.SrcDeps {
		if p == path {
			continue
		}
		if blob := srcFactsOf(a, dep, memo); blob != nil {
			imported[p] = blob
		}
	}
	if len(imported) == 0 {
		imported = nil
	}
	pass := &Pass{
		Analyzer:      a,
		Fset:          lp.Fset,
		Files:         lp.Files,
		Pkg:           lp.Pkg,
		TypesInfo:     lp.Info,
		Report:        func(Diagnostic) {},
		ImportedFacts: imported,
	}
	blob, err := a.ExportFacts(pass)
	if err != nil {
		return nil
	}
	memo[path] = blob
	return blob
}
