package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker: a name for diagnostics, a doc
// string explaining the invariant (and which bug motivated it), and the
// Run function applied once per package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flag names. It must
	// be a valid Go identifier.
	Name string

	// Doc is the help text: first line is the one-sentence summary.
	Doc string

	// Run applies the analyzer to one package. Diagnostics are delivered
	// through pass.Report; the error return is for analysis failures
	// (which abort the whole run), not findings.
	Run func(*Pass) error

	// ExportFacts, when non-nil, serializes this analyzer's facts about
	// the package — declarations importing packages need to check their
	// own code against (lockorder exports its rank table this way). The
	// driver runs it over every dependency and hands the blobs to the
	// importing package's pass as ImportedFacts.
	ExportFacts func(*Pass) ([]byte, error)
}

// Pass is the interface between the driver and one analyzer applied to
// one package: the syntax, the type information, and the diagnostic sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver fills it in.
	Report func(Diagnostic)

	// ImportedFacts maps dependency import paths to the blob this
	// analyzer's ExportFacts produced for them. Nil when no dependency
	// exported facts (or the analyzer is factless).
	ImportedFacts map[string][]byte
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// IsTestFile reports whether pos is inside a _test.go file. Analyzers
// whose invariant deliberately exempts test scaffolding (envcontract)
// use it; the others check test code like any other code.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	if f == nil {
		return false
	}
	name := f.Name()
	return len(name) >= len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}

// FuncOf resolves a call expression to the package-level function or
// method it invokes, or nil (builtin, function value, type conversion).
func FuncOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// PkgFunc reports whether call invokes a function named name declared in
// a package whose Name() is pkgName. Matching by package *name* rather
// than full path lets the same analyzer see both the real package
// (repro/internal/transport) and the analysistest stub (testdata src
// "transport").
func PkgFunc(info *types.Info, call *ast.CallExpr, pkgName, name string) bool {
	fn := FuncOf(info, call)
	return fn != nil && fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Name() == pkgName
}

// IsBuiltin reports whether id is a use of the predeclared builtin with
// the given name (len, cap, copy, make, ...). go/types records builtin
// identifiers in Uses as *types.Builtin.
func IsBuiltin(info *types.Info, id *ast.Ident, name string) bool {
	if id.Name != name {
		return false
	}
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}

// ConstString returns the compile-time string value of e, if it has one.
func ConstString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
