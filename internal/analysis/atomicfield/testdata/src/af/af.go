package af

import (
	"sync"
	"sync/atomic"
)

// Rule 1: atomic anywhere means atomic everywhere.

type A struct {
	n int64
	m int64
}

func bump(a *A) {
	atomic.AddInt64(&a.n, 1)
}

func load(a *A) int64 {
	return atomic.LoadInt64(&a.n)
}

func mixedRead(a *A) int64 {
	return a.n // want `plain access to a\.n, which is accessed via sync/atomic`
}

func mixedWrite(a *A) {
	a.n = 0 // want `plain access to a\.n`
}

func untouched(a *A) int64 {
	return a.m // never touched atomically: fine
}

func fresh() *A {
	a := &A{}
	a.n = 5 // pre-publication initialization: fine
	return a
}

// Typed atomics are immune by construction.

type T struct {
	c atomic.Int64
}

func typedOK(t *T) int64 {
	t.c.Add(1)
	return t.c.Load()
}

// Rule 2: guarded-by fields need the mutex held.

type G struct {
	mu    sync.Mutex // sdr:lockrank gmu
	count int        // guarded by mu
}

func okHeld(g *G) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.count
}

func okHeldWrite(g *G) {
	g.mu.Lock()
	g.count++
	g.mu.Unlock()
}

func badRead(g *G) int {
	return g.count // want `access to g\.count, guarded by mu, without holding g\.mu`
}

func badAfterUnlock(g *G) int {
	g.mu.Lock()
	g.mu.Unlock()
	return g.count // want `access to g\.count, guarded by mu`
}

func crossInstance(g, h *G) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return h.count // want `access to h\.count, guarded by mu, without holding h\.mu`
}

func (g *G) bumpLocked() {
	g.count++ // *Locked convention: the caller holds mu
}

func ctor() *G {
	g := &G{}
	g.count = 1 // fresh allocation: fine
	return g
}
