// Package atomicfield enforces two field-access disciplines:
//
//  1. A struct field passed to a sync/atomic package function anywhere
//     (atomic.AddInt64(&s.n, 1)) must be accessed atomically everywhere
//     — a single plain read or write next to atomic updates is a data
//     race the race detector only catches if the schedule cooperates.
//     (Typed atomics — atomic.Int64 and friends — are immune by
//     construction and are what this tree uses; the rule catches the
//     legacy mixed style creeping back in.)
//
//  2. A field annotated `// guarded by <mu>` may only be accessed while
//     that sibling mutex is held, checked intra-procedurally along the
//     same held-lock walk lockorder uses.
//
// Exemptions: functions whose name ends in "Locked" (the caller-holds
// convention, e.g. stageLocked), accesses through a receiver freshly
// allocated in the same function (constructors publish before sharing),
// and test files.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc:  "check atomic-everywhere and guarded-by field access discipline",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	an := analysis.ParseAnnotations(pass)
	checkMixedAtomics(pass)
	if len(an.Guards) == 0 {
		return nil
	}

	guardMus := map[*types.Var]bool{}
	for _, mu := range an.Guards {
		guardMus[mu] = true
	}
	tracked := func(v *types.Var) bool { return guardMus[v] }

	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || strings.HasSuffix(fd.Name.Name, "Locked") {
				continue
			}
			local := localAllocs(pass, fd)
			reported := map[token.Pos]bool{}
			w := &analysis.LockWalker{
				Info:    pass.TypesInfo,
				Tracked: tracked,
				OnNode: func(n ast.Node, held []analysis.LockUse, _ bool) {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok || reported[sel.Pos()] {
						return
					}
					fv := analysis.FieldVar(pass.TypesInfo, sel)
					if fv == nil {
						return
					}
					mu := an.Guards[fv]
					if mu == nil {
						return
					}
					if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && local[pass.TypesInfo.ObjectOf(id)] {
						return
					}
					want := types.ExprString(sel.X) + "." + mu.Name()
					for _, h := range held {
						if h.Field == mu && h.Path == want {
							return
						}
					}
					reported[sel.Pos()] = true
					pass.Reportf(sel.Pos(), "access to %s, guarded by %s, without holding %s",
						types.ExprString(sel), mu.Name(), want)
				},
			}
			w.Walk(fd.Body)
		}
	}
	return nil
}

// checkMixedAtomics implements rule 1: collect fields reaching legacy
// sync/atomic calls by address, then flag every plain access to them.
func checkMixedAtomics(pass *analysis.Pass) {
	atomicFields := map[*types.Var]token.Pos{}
	atomicSites := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.FuncOf(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // typed atomics' methods are always safe
			}
			for _, arg := range call.Args {
				u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if fv := analysis.FieldVar(pass.TypesInfo, sel); fv != nil {
					if _, seen := atomicFields[fv]; !seen {
						atomicFields[fv] = sel.Pos()
					}
					atomicSites[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			local := localAllocs(pass, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || atomicSites[sel] {
					return true
				}
				fv := analysis.FieldVar(pass.TypesInfo, sel)
				if fv == nil {
					return true
				}
				first, ok := atomicFields[fv]
				if !ok {
					return true
				}
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && local[pass.TypesInfo.ObjectOf(id)] {
					return true
				}
				pass.Reportf(sel.Pos(), "plain access to %s, which is accessed via sync/atomic at %s; a field touched atomically anywhere must be atomic everywhere",
					types.ExprString(sel), pass.Fset.Position(first))
				return true
			})
		}
	}
}

// localAllocs collects objects assigned a fresh allocation (&T{}, T{},
// new(T)) in fd: accesses through them are pre-publication and exempt.
func localAllocs(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !isAlloc(pass, rhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

func isAlloc(pass *analysis.Pass, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op != token.AND {
			return false
		}
		_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
		return ok
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			return analysis.IsBuiltin(pass.TypesInfo, id, "new")
		}
	}
	return false
}
