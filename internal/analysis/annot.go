package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// This file parses the sdr:* source annotations the concurrency analyzers
// share. The grammar, all attached to struct fields or statements as line
// comments:
//
//	// sdr:lockrank <rank> [< <rank> [< <rank> ...]]
//	    On a sync.Mutex/sync.RWMutex field. The first name is this
//	    field's rank; each `a < b` link declares that rank a is acquired
//	    before rank b. Rank names are package-global.
//
//	// guarded by <field>
//	    On any struct field (in its doc or trailing comment): the field
//	    may only be accessed while the named sibling mutex field is held.
//
//	// sdr:holdblock-ok <reason>
//	    On (or on the line above) a blocking operation performed under a
//	    named mutex: the hold is deliberate and audited; <reason> says why.

// RankEdge declares that rank Before is acquired before rank After.
type RankEdge struct {
	Before, After string
	Pos           token.Pos
}

// Annot is the parsed annotation set of one package.
type Annot struct {
	// Ranks maps annotated mutex fields to their rank names.
	Ranks map[*types.Var]string
	// Owner maps annotated fields to the name of the struct type that
	// declares them (the key half of the exported fact table).
	Owner map[*types.Var]string
	// Edges are the declared lock-order edges, in source order.
	Edges []RankEdge
	// Guards maps fields to the sibling mutex field that guards them.
	Guards map[*types.Var]*types.Var
	// holdOK maps file name → line → waiver reason.
	holdOK map[string]map[int]string
	// Problems are malformed annotations, reported by lockorder (one
	// analyzer owns them so they are not triplicated).
	Problems []Diagnostic
}

var (
	rankNameRe  = regexp.MustCompile(`^[a-z][a-zA-Z0-9_]*$`)
	guardedByRe = regexp.MustCompile(`\bguarded by ([A-Za-z_][A-Za-z0-9_]*)\b`)
)

// ParseAnnotations extracts the package's sdr:* annotations. It never
// fails: malformed annotations land in Problems.
func ParseAnnotations(pass *Pass) *Annot {
	an := &Annot{
		Ranks:  map[*types.Var]string{},
		Owner:  map[*types.Var]string{},
		Guards: map[*types.Var]*types.Var{},
		holdOK: map[string]map[int]string{},
	}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				an.parseHoldOK(pass, c)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			an.parseStruct(pass, ts, st)
			return false
		})
	}
	return an
}

func (an *Annot) parseHoldOK(pass *Pass, c *ast.Comment) {
	text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
	if !strings.HasPrefix(text, "sdr:holdblock-ok") {
		return
	}
	reason := strings.TrimSpace(strings.TrimPrefix(text, "sdr:holdblock-ok"))
	if i := strings.Index(reason, "//"); i >= 0 {
		reason = strings.TrimSpace(reason[:i])
	}
	posn := pass.Fset.Position(c.Pos())
	if reason == "" {
		an.Problems = append(an.Problems, Diagnostic{
			Pos: c.Pos(), Message: "sdr:holdblock-ok needs a reason",
		})
	}
	m := an.holdOK[posn.Filename]
	if m == nil {
		m = map[int]string{}
		an.holdOK[posn.Filename] = m
	}
	m[posn.Line] = reason
}

// parseStruct walks one struct declaration, pairing AST fields with their
// types objects by index (which also covers embedded fields).
func (an *Annot) parseStruct(pass *Pass, ts *ast.TypeSpec, st *ast.StructType) {
	tn, _ := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
	if tn == nil {
		return
	}
	stt, _ := tn.Type().Underlying().(*types.Struct)
	if stt == nil {
		return
	}
	idx := 0
	for _, fld := range st.Fields.List {
		n := len(fld.Names)
		if n == 0 {
			n = 1 // embedded field
		}
		if idx+n > stt.NumFields() {
			return // defensive: AST/types disagree
		}
		vars := make([]*types.Var, n)
		for i := range vars {
			vars[i] = stt.Field(idx + i)
		}
		idx += n
		for _, line := range fieldCommentLines(fld) {
			an.parseFieldLine(pass, ts.Name.Name, stt, fld, vars, line.text, line.pos)
		}
	}
}

type commentLine struct {
	text string
	pos  token.Pos
}

func fieldCommentLines(fld *ast.Field) []commentLine {
	var out []commentLine
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			out = append(out, commentLine{
				text: strings.TrimSpace(strings.TrimPrefix(c.Text, "//")),
				pos:  c.Pos(),
			})
		}
	}
	return out
}

func (an *Annot) parseFieldLine(pass *Pass, typeName string, stt *types.Struct, fld *ast.Field, vars []*types.Var, line string, pos token.Pos) {
	// An inner "//" ends the annotation (testdata uses it for want
	// comments; production code may use it for prose).
	if i := strings.Index(line, "//"); i >= 0 {
		line = strings.TrimSpace(line[:i])
	}
	if strings.HasPrefix(line, "sdr:lockrank") {
		an.parseLockRank(typeName, vars, strings.TrimPrefix(line, "sdr:lockrank"), pos)
		return
	}
	if m := guardedByRe.FindStringSubmatch(line); m != nil {
		mu := mutexFieldNamed(stt, m[1])
		if mu == nil {
			return // prose, not a contract ("guarded by the engine", ...)
		}
		for _, v := range vars {
			if v == mu {
				continue
			}
			an.Guards[v] = mu
			an.Owner[v] = typeName
		}
	}
}

func (an *Annot) parseLockRank(typeName string, vars []*types.Var, rest string, pos token.Pos) {
	parts := strings.Split(rest, "<")
	names := make([]string, 0, len(parts))
	for _, p := range parts {
		name := strings.TrimSpace(p)
		if !rankNameRe.MatchString(name) {
			an.Problems = append(an.Problems, Diagnostic{
				Pos: pos, Message: fmt.Sprintf("sdr:lockrank: bad rank name %q", name),
			})
			return
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		an.Problems = append(an.Problems, Diagnostic{
			Pos: pos, Message: "sdr:lockrank needs a rank name",
		})
		return
	}
	ranked := false
	for _, v := range vars {
		if !IsMutexType(v.Type()) {
			an.Problems = append(an.Problems, Diagnostic{
				Pos: pos, Message: fmt.Sprintf("sdr:lockrank on non-mutex field %s", v.Name()),
			})
			continue
		}
		if old, dup := an.Ranks[v]; dup && old != names[0] {
			an.Problems = append(an.Problems, Diagnostic{
				Pos: pos, Message: fmt.Sprintf("field %s already ranked %q", v.Name(), old),
			})
			continue
		}
		an.Ranks[v] = names[0]
		an.Owner[v] = typeName
		ranked = true
	}
	if !ranked {
		return
	}
	for i := 0; i+1 < len(names); i++ {
		an.Edges = append(an.Edges, RankEdge{Before: names[i], After: names[i+1], Pos: pos})
	}
}

// mutexFieldNamed returns the struct's mutex field with the given name.
func mutexFieldNamed(stt *types.Struct, name string) *types.Var {
	for i := 0; i < stt.NumFields(); i++ {
		f := stt.Field(i)
		if f.Name() == name && IsMutexType(f.Type()) {
			return f
		}
	}
	return nil
}

// IsMutexType reports whether t is sync.Mutex or sync.RWMutex (or a
// pointer to one).
func IsMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// HoldOK returns the sdr:holdblock-ok waiver covering pos: a comment on
// the same line or the line immediately above.
func (an *Annot) HoldOK(fset *token.FileSet, pos token.Pos) (string, bool) {
	posn := fset.Position(pos)
	m := an.holdOK[posn.Filename]
	if m == nil {
		return "", false
	}
	if r, ok := m[posn.Line]; ok {
		return r, true
	}
	if r, ok := m[posn.Line-1]; ok {
		return r, true
	}
	return "", false
}

// RankFacts is the serialized lock-rank table one package exports: ranks
// keyed "Type.Field" plus the declared ordering edges. Rank names are
// global across packages by convention.
type RankFacts struct {
	Ranks map[string]string `json:"ranks,omitempty"`
	Edges [][2]string       `json:"edges,omitempty"`
}

// ExportRankFacts serializes the package's rank declarations; nil when
// there are none (so factless packages write no blob).
func (an *Annot) ExportRankFacts() ([]byte, error) {
	if len(an.Ranks) == 0 {
		return nil, nil
	}
	f := RankFacts{Ranks: map[string]string{}}
	for v, rank := range an.Ranks {
		f.Ranks[an.Owner[v]+"."+v.Name()] = rank
	}
	for _, e := range an.Edges {
		f.Edges = append(f.Edges, [2]string{e.Before, e.After})
	}
	sort.Slice(f.Edges, func(i, j int) bool {
		if f.Edges[i][0] != f.Edges[j][0] {
			return f.Edges[i][0] < f.Edges[j][0]
		}
		return f.Edges[i][1] < f.Edges[j][1]
	})
	return json.Marshal(f)
}

// RankIndex resolves mutex fields — local or imported — to rank names and
// answers declared-order queries over the merged edge set.
type RankIndex struct {
	pass     *Pass
	an       *Annot
	imported map[string]*RankFacts
	owner    map[*types.Var]string
	edges    map[string]map[string]bool
	ranks    map[string]bool
	reach    map[string]map[string]bool
}

// NewRankIndex builds the index from the package's own annotations plus
// any rank facts its dependencies exported.
func NewRankIndex(pass *Pass, an *Annot) *RankIndex {
	ix := &RankIndex{
		pass:     pass,
		an:       an,
		imported: map[string]*RankFacts{},
		owner:    map[*types.Var]string{},
		edges:    map[string]map[string]bool{},
		ranks:    map[string]bool{},
		reach:    map[string]map[string]bool{},
	}
	for path, blob := range pass.ImportedFacts {
		var f RankFacts
		if json.Unmarshal(blob, &f) != nil {
			continue
		}
		ix.imported[path] = &f
		for _, r := range f.Ranks {
			ix.ranks[r] = true
		}
		for _, e := range f.Edges {
			ix.addEdge(e[0], e[1])
		}
	}
	for _, r := range an.Ranks {
		ix.ranks[r] = true
	}
	for _, e := range an.Edges {
		ix.addEdge(e.Before, e.After)
	}
	return ix
}

func (ix *RankIndex) addEdge(a, b string) {
	m := ix.edges[a]
	if m == nil {
		m = map[string]bool{}
		ix.edges[a] = m
	}
	m[b] = true
}

// Empty reports whether no rank is declared anywhere in scope.
func (ix *RankIndex) Empty() bool { return len(ix.ranks) == 0 }

// Declared reports whether some package in scope declares rank name.
func (ix *RankIndex) Declared(name string) bool { return ix.ranks[name] }

// RankOf resolves a mutex field to its rank, consulting imported facts
// for fields declared in dependencies.
func (ix *RankIndex) RankOf(v *types.Var) (string, bool) {
	if r, ok := ix.an.Ranks[v]; ok {
		return r, true
	}
	if v.Pkg() == nil || v.Pkg() == ix.pass.Pkg {
		return "", false
	}
	facts := ix.imported[v.Pkg().Path()]
	if facts == nil {
		return "", false
	}
	owner, ok := ix.ownerTypeName(v)
	if !ok {
		return "", false
	}
	r, ok := facts.Ranks[owner+"."+v.Name()]
	return r, ok
}

// ownerTypeName finds the named struct type of v's package that declares
// field v (imported facts are keyed by it).
func (ix *RankIndex) ownerTypeName(v *types.Var) (string, bool) {
	if name, ok := ix.owner[v]; ok {
		return name, name != ""
	}
	scope := v.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == v {
				ix.owner[v] = name
				return name, true
			}
		}
	}
	ix.owner[v] = ""
	return "", false
}

// Before reports whether the declared order requires rank a to be
// acquired before rank b (transitively).
func (ix *RankIndex) Before(a, b string) bool {
	if m, ok := ix.reach[a]; ok {
		return m[b]
	}
	seen := map[string]bool{}
	var dfs func(string)
	dfs = func(n string) {
		for next := range ix.edges[n] {
			if !seen[next] {
				seen[next] = true
				dfs(next)
			}
		}
	}
	dfs(a)
	ix.reach[a] = seen
	return seen[b]
}

// Cycle returns one declared-order cycle as a rank path (nil if the edge
// graph is a DAG).
func (ix *RankIndex) Cycle() []string {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var stack []string
	var cycle []string
	var dfs func(string) bool
	dfs = func(n string) bool {
		color[n] = gray
		stack = append(stack, n)
		for _, next := range sortedKeys(ix.edges[n]) {
			switch color[next] {
			case gray:
				for i, s := range stack {
					if s == next {
						cycle = append(append([]string(nil), stack[i:]...), next)
						return true
					}
				}
			case white:
				if dfs(next) {
					return true
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[n] = black
		return false
	}
	for _, n := range sortedKeys2(ix.edges) {
		if color[n] == white && dfs(n) {
			return cycle
		}
	}
	return nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeys2(m map[string]map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
