package lockorder_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockorder"
)

func TestLockorder(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer, "lo", "lobad", "locyc")
}

// TestLockorderFacts exercises the cross-package fact path: uses imports
// locks, whose rank table arrives as an exported fact.
func TestLockorderFacts(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer, "uses")
}
