package lo

import "sync"

type S struct {
	mu    sync.Mutex   // sdr:lockrank outer < inner
	in    sync.Mutex   // sdr:lockrank inner
	other sync.RWMutex // sdr:lockrank other
	plain sync.Mutex   // unranked: invisible to the analyzer
}

func ok(s *S) {
	s.mu.Lock()
	s.in.Lock() // outer < inner: fine
	s.in.Unlock()
	s.mu.Unlock()
}

func okDefer(s *S) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.in.Lock()
	defer s.in.Unlock()
}

func inverted(s *S) {
	s.in.Lock()
	s.mu.Lock() // want `acquires s\.mu, rank outer while holding s\.in \(rank inner\): declared order is outer < inner`
	s.mu.Unlock()
	s.in.Unlock()
}

func reacquire(s *S) {
	s.mu.Lock()
	s.mu.Lock() // want `acquires s\.mu, s\.mu, which is already held`
	s.mu.Unlock()
	s.mu.Unlock()
}

func undeclared(s *S) {
	s.mu.Lock()
	s.other.Lock() // want `no declared order`
	s.other.Unlock()
	s.mu.Unlock()
}

func sequentialOK(s *S) {
	s.in.Lock()
	s.in.Unlock()
	s.mu.Lock() // released first: no nesting, no finding
	s.mu.Unlock()
}

func branchRelease(s *S, full bool) {
	s.mu.Lock()
	if !full {
		s.mu.Unlock()
		return
	}
	s.in.Lock() // still outer < inner on the surviving path: fine
	s.in.Unlock()
	s.mu.Unlock()
}

func viaHelper(s *S) {
	s.in.Lock()
	defer s.in.Unlock()
	lockOuter(s) // want `call to lockOuter may acquire rank outer while holding s\.in \(rank inner\)`
}

func lockOuter(s *S) {
	s.mu.Lock()
	s.mu.Unlock()
}

func viaTwoLevels(s *S) {
	s.in.Lock()
	defer s.in.Unlock()
	helper2(s) // want `call to helper2 may acquire rank outer`
}

func helper2(s *S) { lockOuter(s) }

func sameRank(a, b *S) {
	a.mu.Lock()
	b.mu.Lock() // want `same-rank nesting`
	b.mu.Unlock()
	a.mu.Unlock()
}

func untrackedOK(s *S) {
	s.plain.Lock() // unranked mutexes are not checked
	s.mu.Lock()
	s.mu.Unlock()
	s.plain.Unlock()
}

func goroutineNotNested(s *S) {
	s.in.Lock()
	defer s.in.Unlock()
	go lockOuterAsync(s) // async acquisition does not nest: fine
}

func lockOuterAsync(s *S) {
	s.mu.Lock()
	s.mu.Unlock()
}
