package locyc

import "sync"

// A cycle in the declared edges is reported at the first declaration.

type Cyclic struct {
	a sync.Mutex // sdr:lockrank ca < cb // want `declared lock ranks form a cycle`
	b sync.Mutex // sdr:lockrank cb < ca
}

func use(c *Cyclic) {
	c.a.Lock()
	c.a.Unlock()
	c.b.Lock()
	c.b.Unlock()
}
