// Package locks exports ranked mutexes; package uses imports it and is
// checked against these facts.
package locks

import "sync"

type Box struct {
	MuA sync.Mutex // sdr:lockrank boxa < boxb
	MuB sync.Mutex // sdr:lockrank boxb
}
