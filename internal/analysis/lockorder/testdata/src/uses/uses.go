package uses

import "locks"

func ok(b *locks.Box) {
	b.MuA.Lock()
	b.MuB.Lock()
	b.MuB.Unlock()
	b.MuA.Unlock()
}

func inverted(b *locks.Box) {
	b.MuB.Lock()
	b.MuA.Lock() // want `acquires b\.MuA, rank boxa while holding b\.MuB \(rank boxb\): declared order is boxa < boxb`
	b.MuA.Unlock()
	b.MuB.Unlock()
}
