package lobad

import "sync"

// Malformed annotations are findings themselves.

type Bad struct {
	mu sync.Mutex // sdr:lockrank first < ghost // want `edge references undeclared rank "ghost"`
	n  int        // sdr:lockrank nonmutex // want `sdr:lockrank on non-mutex field n`
}

func use(b *Bad) {
	b.mu.Lock()
	b.mu.Unlock()
}
