// Package lockorder checks mutex acquisitions against the lock-rank
// partial order declared by // sdr:lockrank annotations.
//
// Every mutex field carrying an annotation gets a rank; `a < b` links
// declare that a lock of rank a is acquired before one of rank b. The
// analyzer walks each function tracking the held set and reports:
//
//   - an acquisition whose rank is declared to come BEFORE a rank
//     already held (the classic inversion);
//   - any nesting of two ranked mutexes with no declared order — the
//     order must be written down, not folklore;
//   - re-acquisition of a mutex already held, and same-rank nesting;
//   - a cycle in the declared edges themselves.
//
// Calls are checked against transitive same-package summaries, so an
// inversion hidden behind a helper (Deliver holding the batch mutex
// while flushBatchLocked dials through the wire mutex) is still caught.
// Rank tables of dependencies arrive as facts, so cross-package nests
// are checked too.
//
// Motivated by the PR 8 review: the batched peer wire's shutdown races
// all lived in the unwritten ordering between the batch mutex, the wire
// mutex, and the ringIO fence.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name:        "lockorder",
	Doc:         "check mutex acquisitions against declared sdr:lockrank ordering",
	Run:         run,
	ExportFacts: exportFacts,
}

func exportFacts(pass *analysis.Pass) ([]byte, error) {
	return analysis.ParseAnnotations(pass).ExportRankFacts()
}

func run(pass *analysis.Pass) error {
	an := analysis.ParseAnnotations(pass)
	for _, p := range an.Problems {
		pass.Report(p)
	}
	ix := analysis.NewRankIndex(pass, an)
	if ix.Empty() {
		return nil
	}
	for _, e := range an.Edges {
		for _, name := range []string{e.Before, e.After} {
			if !ix.Declared(name) {
				pass.Reportf(e.Pos, "sdr:lockrank edge references undeclared rank %q", name)
			}
		}
	}
	if cyc := ix.Cycle(); cyc != nil {
		pos := token.NoPos
		if len(an.Edges) > 0 {
			pos = an.Edges[0].Pos
		} else if len(pass.Files) > 0 {
			pos = pass.Files[0].Pos()
		}
		pass.Reportf(pos, "declared lock ranks form a cycle: %s", strings.Join(cyc, " < "))
	}

	tracked := func(v *types.Var) bool { _, ok := ix.RankOf(v); return ok }
	summaries := analysis.FuncAcquires(pass, tracked)
	reported := map[token.Pos]bool{}
	report := func(pos token.Pos, format string, args ...any) {
		if !reported[pos] {
			reported[pos] = true
			pass.Reportf(pos, format, args...)
		}
	}

	checkPair := func(pos token.Pos, how string, acqPath, acqRank string, held analysis.LockUse) {
		heldRank, _ := ix.RankOf(held.Field)
		switch {
		case acqPath != "" && acqPath == held.Path:
			report(pos, "%s %s, which is already held (acquired at %s)",
				how, acqPath, pass.Fset.Position(held.Pos))
		case acqRank == heldRank:
			report(pos, "%s rank %s while already holding %s (same rank %s): same-rank nesting needs distinct ranks",
				how, acqRank, held.Path, heldRank)
		case ix.Before(acqRank, heldRank):
			report(pos, "%s rank %s while holding %s (rank %s): declared order is %s < %s",
				how, acqRank, held.Path, heldRank, acqRank, heldRank)
		case !ix.Before(heldRank, acqRank):
			report(pos, "%s rank %s while holding %s (rank %s) with no declared order; declare sdr:lockrank %s < %s or restructure",
				how, acqRank, held.Path, heldRank, heldRank, acqRank)
		}
	}

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &analysis.LockWalker{
				Info:    pass.TypesInfo,
				Tracked: tracked,
				OnAcquire: func(acq analysis.LockUse, held []analysis.LockUse) {
					rank, _ := ix.RankOf(acq.Field)
					for _, h := range held {
						checkPair(acq.Pos, fmt.Sprintf("acquires %s,", acq.Path), acq.Path, rank, h)
					}
				},
				OnNode: func(n ast.Node, held []analysis.LockUse, _ bool) {
					call, ok := n.(*ast.CallExpr)
					if !ok || len(held) == 0 {
						return
					}
					fn := analysis.FuncOf(pass.TypesInfo, call)
					if fn == nil {
						return
					}
					for v := range summaries[fn] {
						rank, _ := ix.RankOf(v)
						for _, h := range held {
							checkPair(call.Pos(), fmt.Sprintf("call to %s may acquire", fn.Name()), "", rank, h)
						}
					}
				},
			}
			w.Walk(fd.Body)
		}
	}
	return nil
}
